//! Cross-session batch aggregation (the admission layer).
//!
//! A DP enumerator asks for estimates in bursts; with several optimizer
//! sessions of the same tenant running concurrently, each burst alone
//! under-fills the blocked matmul kernels.  [`BatchAggregator`] coalesces:
//! the first session to arrive becomes the *leader*, drains every request
//! queued at that moment into one `estimate_encoded_batch_memo` call over
//! the tenant's owned [`ServingEstimator`] handle, and distributes the
//! per-request result slices; sessions arriving while a wave is in flight
//! queue for the next wave.  Identical subtrees across sessions deduplicate
//! inside the coalesced batch (and against the shared subtree cache), so
//! the aggregated call does close to one session's work for many sessions'
//! requests.
//!
//! Results are **bit-identical** to each session estimating alone: the
//! memoized batch path is column-independent (pinned by
//! `memoized_inference_is_bit_identical_*` in `estimator_core`), so
//! coalescing changes only the wall-clock, never a value.

use crate::workers::WorkerPool;
use estimator_core::ServingEstimator;
use featurize::EncodedPlan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A borrowed plan slice smuggled across the leader thread.
///
/// Safety: the requesting session blocks inside [`BatchAggregator::estimate`]
/// until its [`ResultSlot`] is delivered, so the slice is alive for as long
/// as any other thread can observe this pointer; `EncodedPlan` is `Sync`,
/// so the leader may read it from another thread.
struct PlanSlice {
    ptr: *const EncodedPlan,
    len: usize,
}

unsafe impl Send for PlanSlice {}

impl PlanSlice {
    fn as_slice(&self) -> &[EncodedPlan] {
        // Safety: see the type-level invariant above.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// One session's parked request: where its plans are and where its results
/// go.
struct Request {
    plans: PlanSlice,
    result: Arc<ResultSlot>,
}

enum SlotState {
    Pending,
    Ready(Vec<(f64, f64)>),
    /// The serving leader panicked before delivering this request.
    Failed,
}

struct ResultSlot {
    filled: Mutex<SlotState>,
    cv: Condvar,
}

impl Default for ResultSlot {
    fn default() -> Self {
        ResultSlot { filled: Mutex::new(SlotState::Pending), cv: Condvar::new() }
    }
}

impl ResultSlot {
    fn set(&self, state: SlotState) {
        // `unwrap_or_else(into_inner)`: a waiter cannot poison this mutex
        // (it never panics while holding it), but ignoring poison keeps the
        // unwind path itself panic-free.
        *self.filled.lock().unwrap_or_else(|e| e.into_inner()) = state;
        self.cv.notify_all();
    }

    fn wait_take(&self) -> Vec<(f64, f64)> {
        let mut guard = self.filled.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match std::mem::replace(&mut *guard, SlotState::Pending) {
                SlotState::Ready(v) => return v,
                SlotState::Failed => panic!("aggregator leader panicked while serving this request's wave"),
                SlotState::Pending => guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }
}

#[derive(Default)]
struct AggState {
    pending: Vec<Request>,
    leader_active: bool,
}

/// Coalesces concurrent same-tenant estimate requests into single
/// level-batched memoized inference calls over one owned serving handle.
pub struct BatchAggregator {
    serving: ServingEstimator,
    state: Mutex<AggState>,
    /// Two-tier wave mode: when set, each coalesced wave runs the quantized
    /// first pass over every candidate and re-scores only the `top_k`
    /// cheapest-looking ones at full precision
    /// ([`ServingEstimator::estimate_encoded_batch_tiered`]).
    tiered_top_k: Option<usize>,
    /// Wave-splitting worker runtime ([`BatchAggregator::with_workers`]):
    /// a full-precision wave larger than `split_threshold` is chunked
    /// across the pool instead of running on the leader session's thread.
    workers: Option<(Arc<WorkerPool>, usize)>,
    waves: AtomicU64,
    waves_split: AtomicU64,
}

/// Wave counters for one aggregator (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveStats {
    /// Coalesced waves served.
    pub waves: u64,
    /// Waves split across a [`WorkerPool`] (subset of `waves`).
    pub waves_split: u64,
}

impl BatchAggregator {
    /// An aggregator over one tenant's owned serving handle (full-precision
    /// waves; results bit-identical to un-coalesced serving).
    pub fn new(serving: ServingEstimator) -> Self {
        BatchAggregator {
            serving,
            state: Mutex::new(AggState::default()),
            tiered_top_k: None,
            workers: None,
            waves: AtomicU64::new(0),
            waves_split: AtomicU64::new(0),
        }
    }

    /// An aggregator whose waves run the two-tier path: a cheap int8 pass
    /// over the whole coalesced wave, then a full-precision re-score of the
    /// `top_k` candidates with the lowest approximate cost.  Escalated
    /// candidates get f32-tier (bit-exact) estimates; the rest keep their
    /// quantized estimates — so unlike [`BatchAggregator::new`], values may
    /// depend on which requests share a wave (the escalation set is ranked
    /// per wave).  Falls back to full-precision waves when `serving`
    /// carries no quantized weights.
    pub fn new_tiered(serving: ServingEstimator, top_k: usize) -> Self {
        BatchAggregator {
            serving,
            state: Mutex::new(AggState::default()),
            tiered_top_k: Some(top_k),
            workers: None,
            waves: AtomicU64::new(0),
            waves_split: AtomicU64::new(0),
        }
    }

    /// Route oversized **full-precision** waves through `pool`: a coalesced
    /// wave of more than `split_threshold` plans is cut into contiguous
    /// chunks (at most one per worker, none smaller than the threshold),
    /// the leader scores the first chunk inline on the shared cache, and
    /// the rest run on the pool against each executing worker's private
    /// cache shard — idle workers steal queued chunks, so one giant wave
    /// spreads across cores instead of serializing behind the leader
    /// session's thread.
    ///
    /// Results stay **bit-identical** to the unsplit wave: the memoized
    /// batch path is column-independent, so neither the chunk boundaries
    /// nor which cache a chunk warms can change a served value.  Tiered
    /// waves are never split — their escalation set is ranked across the
    /// *whole* wave, so splitting would change which plans get f32-tier
    /// estimates (see [`BatchAggregator::new_tiered`]).
    pub fn with_workers(mut self, pool: Arc<WorkerPool>, split_threshold: usize) -> Self {
        self.workers = Some((pool, split_threshold.max(1)));
        self
    }

    /// Wave counters (how many waves this aggregator served, and how many
    /// of those were split across the worker pool).
    pub fn wave_stats(&self) -> WaveStats {
        WaveStats { waves: self.waves.load(Ordering::Relaxed), waves_split: self.waves_split.load(Ordering::Relaxed) }
    }

    /// The per-wave escalation budget, when this aggregator is tiered.
    pub fn tiered_top_k(&self) -> Option<usize> {
        self.tiered_top_k
    }

    /// The underlying owned serving handle (hit-rate reporting, direct
    /// un-aggregated calls).
    pub fn serving(&self) -> &ServingEstimator {
        &self.serving
    }

    /// Estimate `(cost, cardinality)` for each plan, in order — possibly
    /// coalesced with other sessions' concurrent requests into one batched
    /// inference call.  Blocks until this request's results are ready.
    /// Bit-identical to `serving().estimate_encoded_batch` on the same
    /// plans.
    pub fn estimate(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        if plans.is_empty() {
            return Vec::new();
        }
        let slot = Arc::new(ResultSlot::default());
        let became_leader = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.pending.push(Request {
                plans: PlanSlice { ptr: plans.as_ptr(), len: plans.len() },
                result: Arc::clone(&slot),
            });
            if st.leader_active {
                false
            } else {
                st.leader_active = true;
                true
            }
        };
        if became_leader {
            // Serve waves until the queue drains; the first wave contains
            // this thread's own request.  Leadership is handed off through
            // `leader_active`: a session enqueueing after the final drain
            // sees it false and leads its own wave.
            //
            // The guard covers a leader panic (e.g. inside inference):
            // without it, `leader_active` would stay true forever and every
            // queued waiter — plus all future sessions — would block
            // permanently behind a leader that no longer exists.  On unwind
            // the guard releases leadership and fails the undelivered
            // slots, so waiters propagate the panic instead of hanging.
            let mut guard = LeaderGuard { aggregator: self, wave: Vec::new(), armed: true };
            loop {
                guard.wave = {
                    let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                    if st.pending.is_empty() {
                        st.leader_active = false;
                        break;
                    }
                    std::mem::take(&mut st.pending)
                };
                let refs: Vec<&EncodedPlan> = guard.wave.iter().flat_map(|r| r.plans.as_slice()).collect();
                let results = self.serve_wave(&refs);
                let mut offset = 0;
                for req in guard.wave.drain(..) {
                    let n = req.plans.len;
                    req.result.set(SlotState::Ready(results[offset..offset + n].to_vec()));
                    offset += n;
                }
            }
            guard.armed = false;
        }
        slot.wait_take()
    }

    /// Serve one coalesced wave: tiered when configured, split across the
    /// worker pool when one is attached and the wave is full-precision and
    /// oversized, inline on the leader's thread otherwise.
    fn serve_wave(&self, refs: &[&EncodedPlan]) -> Vec<(f64, f64)> {
        self.waves.fetch_add(1, Ordering::Relaxed);
        if let Some(top_k) = self.tiered_top_k {
            return self.serving.estimate_encoded_batch_tiered(refs, top_k);
        }
        match &self.workers {
            Some((pool, threshold)) if refs.len() > *threshold => {
                self.waves_split.fetch_add(1, Ordering::Relaxed);
                self.serve_wave_split(pool, *threshold, refs)
            }
            _ => self.serving.estimate_encoded_batch(refs),
        }
    }

    /// Split one oversized full-precision wave into contiguous chunks and
    /// fan it out: chunk 0 runs inline on the leader (shared cache), the
    /// rest on the pool (each worker's own shard).  Blocks until **every**
    /// chunk has reported — also on failure, so no in-flight job can
    /// outlive the wave's borrowed plan slices — then re-panics on the
    /// leader thread if any chunk panicked (LeaderGuard unblocks the
    /// parked sessions).
    fn serve_wave_split(&self, pool: &Arc<WorkerPool>, threshold: usize, refs: &[&EncodedPlan]) -> Vec<(f64, f64)> {
        let n_chunks = pool.len().min(refs.len().div_ceil(threshold)).max(1);
        let per_chunk = refs.len().div_ceil(n_chunks);
        let chunks: Vec<&[&EncodedPlan]> = refs.chunks(per_chunk).collect();
        let collector = Arc::new(ChunkCollector::new(chunks.len()));
        for (i, chunk) in chunks.iter().enumerate().skip(1) {
            let job_refs = ChunkRefs::capture(chunk);
            let serving = self.serving.clone();
            let collector = Arc::clone(&collector);
            pool.submit(Box::new(move |ctx| {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // Safety: the leader below blocks in `wait_all` until
                    // this chunk posts, and every parked session keeps its
                    // plan slice alive until the leader delivers — so the
                    // captured borrows outlive this job.
                    let refs = unsafe { job_refs.as_refs() };
                    serving.estimate_encoded_batch_with_cache(&refs, ctx.cache())
                }));
                collector.post(i, result.ok());
            }));
        }
        let first = catch_unwind(AssertUnwindSafe(|| self.serving.estimate_encoded_batch(chunks[0])));
        collector.post(0, first.ok());
        collector.wait_all()
    }
}

/// Borrowed per-chunk plan refs smuggled onto a pool worker — the split
/// wave's counterpart of [`PlanSlice`], with the same lifetime argument:
/// the leader cannot return (or unwind) out of the wave before every chunk
/// has posted, and the requesting sessions cannot free the plans before
/// the leader delivers their slots.
struct ChunkRefs(Vec<*const EncodedPlan>);

unsafe impl Send for ChunkRefs {}

impl ChunkRefs {
    fn capture(refs: &[&EncodedPlan]) -> Self {
        ChunkRefs(refs.iter().map(|&r| r as *const EncodedPlan).collect())
    }

    /// # Safety
    /// Caller must guarantee the captured plans are still alive (see the
    /// type-level invariant).
    unsafe fn as_refs(&self) -> Vec<&EncodedPlan> {
        self.0.iter().map(|&p| &*p).collect()
    }
}

/// Rendezvous for a split wave's chunk results, in chunk order.  `None`
/// marks a panicked chunk; [`ChunkCollector::wait_all`] still waits for
/// every post before re-panicking, so no job can be left running against
/// plan memory the wave no longer pins.
struct ChunkCollector {
    slots: Mutex<ChunkSlots>,
    cv: Condvar,
}

struct ChunkSlots {
    results: Vec<Option<Vec<(f64, f64)>>>,
    posted: usize,
    failed: bool,
}

impl ChunkCollector {
    fn new(n_chunks: usize) -> Self {
        ChunkCollector {
            slots: Mutex::new(ChunkSlots { results: (0..n_chunks).map(|_| None).collect(), posted: 0, failed: false }),
            cv: Condvar::new(),
        }
    }

    fn post(&self, index: usize, result: Option<Vec<(f64, f64)>>) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.failed |= result.is_none();
        slots.results[index] = result;
        slots.posted += 1;
        drop(slots);
        self.cv.notify_all();
    }

    fn wait_all(&self) -> Vec<(f64, f64)> {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        while slots.posted < slots.results.len() {
            slots = self.cv.wait(slots).unwrap_or_else(|e| e.into_inner());
        }
        assert!(!slots.failed, "a split-wave chunk panicked while serving");
        slots.results.iter_mut().flat_map(|r| r.take().expect("all chunks posted Ready")).collect()
    }
}

/// Unwind protection for the aggregation leader: on a panic mid-wave,
/// release leadership and fail the in-flight and still-queued requests so
/// their sessions unblock (and re-panic) instead of waiting forever.
struct LeaderGuard<'a> {
    aggregator: &'a BatchAggregator,
    wave: Vec<Request>,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for req in self.wave.drain(..) {
            req.result.set(SlotState::Failed);
        }
        let mut st = self.aggregator.state.lock().unwrap_or_else(|e| e.into_inner());
        st.leader_active = false;
        for req in st.pending.drain(..) {
            req.result.set(SlotState::Failed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{execute_plan, CostModel};
    use estimator_core::{CostEstimator, ModelConfig, TrainConfig};
    use featurize::{EncodingConfig, FeatureExtractor};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
    use strembed::HashBitmapEncoder;

    fn fitted_estimator() -> (CostEstimator, Vec<EncodedPlan>) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
        let mut est = CostEstimator::new(
            fx,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
            TrainConfig { epochs: 2, batch_size: 8, ..Default::default() },
        );
        let cost = CostModel::default();
        let plans: Vec<PlanNode> = (0..24)
            .map(|i| {
                let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                    table: "title".into(),
                    predicate: Some(Predicate::atom(
                        "title",
                        "production_year",
                        CompareOp::Gt,
                        Operand::Num((1940 + i * 2) as f64),
                    )),
                });
                let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
                let mut join = PlanNode::inner(
                    PhysicalOp::HashJoin {
                        condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id"),
                    },
                    vec![scan_t, scan_mc],
                );
                execute_plan(&db, &mut join, &cost);
                join
            })
            .collect();
        est.fit(&plans);
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        (est, encoded)
    }

    #[test]
    fn aggregated_results_are_bit_identical_to_direct() {
        let (est, encoded) = fitted_estimator();
        let direct = est.estimate_encoded_batch_memo(&encoded);
        let agg = BatchAggregator::new(est.serving());
        let coalesced = agg.estimate(&encoded);
        let bits = |v: &[(f64, f64)]| v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&coalesced), bits(&direct));
        assert!(agg.estimate(&[]).is_empty());
    }

    #[test]
    fn tiered_aggregator_waves_match_the_tiered_serving_path() {
        let (mut est, encoded) = fitted_estimator();
        assert!(est.ensure_quantized(), "test model must quantize at least one matrix");
        let top_k = 5;
        let refs: Vec<&EncodedPlan> = encoded.iter().collect();
        let direct = est.serving().estimate_encoded_batch_tiered(&refs, top_k);
        let agg = BatchAggregator::new_tiered(est.serving(), top_k);
        assert_eq!(agg.tiered_top_k(), Some(top_k));
        let coalesced = agg.estimate(&encoded);
        let bits = |v: &[(f64, f64)]| v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&coalesced), bits(&direct));
        // The escalated candidates carry full-precision bits: at least
        // `top_k` entries agree exactly with the all-f32 memoized path.
        let full = est.estimate_encoded_batch_memo(&encoded);
        let n_exact = coalesced
            .iter()
            .zip(&full)
            .filter(|(a, b)| a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits())
            .count();
        assert!(n_exact >= top_k, "only {n_exact} of {} entries match full precision, expected >= {top_k}", full.len());
        assert!(n_exact < full.len(), "quantized tier produced full-precision bits everywhere; tiering is vacuous");
    }

    #[test]
    fn split_waves_are_bit_identical_to_unsplit_and_counted() {
        let (est, encoded) = fitted_estimator();
        let direct = est.estimate_encoded_batch_memo(&encoded);
        let pool = Arc::new(WorkerPool::new(4));
        // threshold 4 over 24 plans: every wave splits into 24/4-capped-at-4
        // pool-sized chunks.
        let agg = BatchAggregator::new(est.serving()).with_workers(Arc::clone(&pool), 4);
        let bits = |v: &[(f64, f64)]| v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>();
        for _ in 0..3 {
            let coalesced = agg.estimate(&encoded);
            assert_eq!(bits(&coalesced), bits(&direct), "split wave changed served bits");
        }
        let waves = agg.wave_stats();
        assert_eq!(waves.waves, 3);
        assert_eq!(waves.waves_split, 3, "every oversized full-precision wave must split");
        let workers = pool.stats();
        assert!(workers.executed >= 3, "split chunks must actually run on the pool");
        // A wave at or under the threshold stays on the leader's thread.
        let small = agg.estimate(&encoded[..3]);
        assert_eq!(bits(&small), bits(&direct[..3]));
        assert_eq!(agg.wave_stats(), WaveStats { waves: 4, waves_split: 3 });
    }

    #[test]
    fn tiered_waves_never_split() {
        let (mut est, encoded) = fitted_estimator();
        assert!(est.ensure_quantized(), "test model must quantize at least one matrix");
        let top_k = 5;
        let refs: Vec<&EncodedPlan> = encoded.iter().collect();
        let direct = est.serving().estimate_encoded_batch_tiered(&refs, top_k);
        let pool = Arc::new(WorkerPool::new(4));
        let agg = BatchAggregator::new_tiered(est.serving(), top_k).with_workers(Arc::clone(&pool), 4);
        let coalesced = agg.estimate(&encoded);
        let bits = |v: &[(f64, f64)]| v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&coalesced), bits(&direct));
        assert_eq!(
            agg.wave_stats(),
            WaveStats { waves: 1, waves_split: 0 },
            "a tiered wave ranks its escalation set over the whole wave and must not split"
        );
        assert_eq!(pool.stats().executed, 0, "no tiered chunk may reach the pool");
    }

    #[test]
    fn concurrent_sessions_coalesce_through_a_worker_pool() {
        let (est, encoded) = fitted_estimator();
        let expected = est.estimate_encoded_batch_memo(&encoded);
        let pool = Arc::new(WorkerPool::new(2));
        let agg = Arc::new(BatchAggregator::new(est.serving()).with_workers(pool, 2));
        std::thread::scope(|scope| {
            for session in 0..8usize {
                let agg = Arc::clone(&agg);
                let encoded = &encoded;
                let expected = &expected;
                scope.spawn(move || {
                    let lo = session * 3;
                    let hi = lo + 3;
                    for _ in 0..10 {
                        let got = agg.estimate(&encoded[lo..hi]);
                        for (g, e) in got.iter().zip(&expected[lo..hi]) {
                            assert_eq!(g.0.to_bits(), e.0.to_bits(), "session {session} got wrong bits via the pool");
                            assert_eq!(g.1.to_bits(), e.1.to_bits());
                        }
                    }
                });
            }
        });
        assert!(agg.wave_stats().waves >= 1);
    }

    #[test]
    fn concurrent_sessions_coalesce_and_each_gets_its_own_slice() {
        let (est, encoded) = fitted_estimator();
        let expected = est.estimate_encoded_batch_memo(&encoded);
        let agg = Arc::new(BatchAggregator::new(est.serving()));
        // 8 sessions, each repeatedly requesting a distinct window of the
        // workload; every response must be that session's own slice.
        std::thread::scope(|scope| {
            for session in 0..8usize {
                let agg = Arc::clone(&agg);
                let encoded = &encoded;
                let expected = &expected;
                scope.spawn(move || {
                    let lo = session * 3;
                    let hi = lo + 3;
                    for _ in 0..20 {
                        let got = agg.estimate(&encoded[lo..hi]);
                        for (g, e) in got.iter().zip(&expected[lo..hi]) {
                            assert_eq!(g.0.to_bits(), e.0.to_bits(), "session {session} got another session's rows");
                            assert_eq!(g.1.to_bits(), e.1.to_bits());
                        }
                    }
                });
            }
        });
    }
}
