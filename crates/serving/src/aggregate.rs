//! Cross-session batch aggregation (the admission layer).
//!
//! A DP enumerator asks for estimates in bursts; with several optimizer
//! sessions of the same tenant running concurrently, each burst alone
//! under-fills the blocked matmul kernels.  [`BatchAggregator`] coalesces:
//! the first session to arrive becomes the *leader*, drains every request
//! queued at that moment into one `estimate_encoded_batch_memo` call over
//! the tenant's owned [`ServingEstimator`] handle, and distributes the
//! per-request result slices; sessions arriving while a wave is in flight
//! queue for the next wave.  Identical subtrees across sessions deduplicate
//! inside the coalesced batch (and against the shared subtree cache), so
//! the aggregated call does close to one session's work for many sessions'
//! requests.
//!
//! Results are **bit-identical** to each session estimating alone: the
//! memoized batch path is column-independent (pinned by
//! `memoized_inference_is_bit_identical_*` in `estimator_core`), so
//! coalescing changes only the wall-clock, never a value.

use estimator_core::ServingEstimator;
use featurize::EncodedPlan;
use std::sync::{Arc, Condvar, Mutex};

/// A borrowed plan slice smuggled across the leader thread.
///
/// Safety: the requesting session blocks inside [`BatchAggregator::estimate`]
/// until its [`ResultSlot`] is delivered, so the slice is alive for as long
/// as any other thread can observe this pointer; `EncodedPlan` is `Sync`,
/// so the leader may read it from another thread.
struct PlanSlice {
    ptr: *const EncodedPlan,
    len: usize,
}

unsafe impl Send for PlanSlice {}

impl PlanSlice {
    fn as_slice(&self) -> &[EncodedPlan] {
        // Safety: see the type-level invariant above.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// One session's parked request: where its plans are and where its results
/// go.
struct Request {
    plans: PlanSlice,
    result: Arc<ResultSlot>,
}

enum SlotState {
    Pending,
    Ready(Vec<(f64, f64)>),
    /// The serving leader panicked before delivering this request.
    Failed,
}

struct ResultSlot {
    filled: Mutex<SlotState>,
    cv: Condvar,
}

impl Default for ResultSlot {
    fn default() -> Self {
        ResultSlot { filled: Mutex::new(SlotState::Pending), cv: Condvar::new() }
    }
}

impl ResultSlot {
    fn set(&self, state: SlotState) {
        // `unwrap_or_else(into_inner)`: a waiter cannot poison this mutex
        // (it never panics while holding it), but ignoring poison keeps the
        // unwind path itself panic-free.
        *self.filled.lock().unwrap_or_else(|e| e.into_inner()) = state;
        self.cv.notify_all();
    }

    fn wait_take(&self) -> Vec<(f64, f64)> {
        let mut guard = self.filled.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match std::mem::replace(&mut *guard, SlotState::Pending) {
                SlotState::Ready(v) => return v,
                SlotState::Failed => panic!("aggregator leader panicked while serving this request's wave"),
                SlotState::Pending => guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }
}

#[derive(Default)]
struct AggState {
    pending: Vec<Request>,
    leader_active: bool,
}

/// Coalesces concurrent same-tenant estimate requests into single
/// level-batched memoized inference calls over one owned serving handle.
pub struct BatchAggregator {
    serving: ServingEstimator,
    state: Mutex<AggState>,
    /// Two-tier wave mode: when set, each coalesced wave runs the quantized
    /// first pass over every candidate and re-scores only the `top_k`
    /// cheapest-looking ones at full precision
    /// ([`ServingEstimator::estimate_encoded_batch_tiered`]).
    tiered_top_k: Option<usize>,
}

impl BatchAggregator {
    /// An aggregator over one tenant's owned serving handle (full-precision
    /// waves; results bit-identical to un-coalesced serving).
    pub fn new(serving: ServingEstimator) -> Self {
        BatchAggregator { serving, state: Mutex::new(AggState::default()), tiered_top_k: None }
    }

    /// An aggregator whose waves run the two-tier path: a cheap int8 pass
    /// over the whole coalesced wave, then a full-precision re-score of the
    /// `top_k` candidates with the lowest approximate cost.  Escalated
    /// candidates get f32-tier (bit-exact) estimates; the rest keep their
    /// quantized estimates — so unlike [`BatchAggregator::new`], values may
    /// depend on which requests share a wave (the escalation set is ranked
    /// per wave).  Falls back to full-precision waves when `serving`
    /// carries no quantized weights.
    pub fn new_tiered(serving: ServingEstimator, top_k: usize) -> Self {
        BatchAggregator { serving, state: Mutex::new(AggState::default()), tiered_top_k: Some(top_k) }
    }

    /// The per-wave escalation budget, when this aggregator is tiered.
    pub fn tiered_top_k(&self) -> Option<usize> {
        self.tiered_top_k
    }

    /// The underlying owned serving handle (hit-rate reporting, direct
    /// un-aggregated calls).
    pub fn serving(&self) -> &ServingEstimator {
        &self.serving
    }

    /// Estimate `(cost, cardinality)` for each plan, in order — possibly
    /// coalesced with other sessions' concurrent requests into one batched
    /// inference call.  Blocks until this request's results are ready.
    /// Bit-identical to `serving().estimate_encoded_batch` on the same
    /// plans.
    pub fn estimate(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        if plans.is_empty() {
            return Vec::new();
        }
        let slot = Arc::new(ResultSlot::default());
        let became_leader = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.pending.push(Request {
                plans: PlanSlice { ptr: plans.as_ptr(), len: plans.len() },
                result: Arc::clone(&slot),
            });
            if st.leader_active {
                false
            } else {
                st.leader_active = true;
                true
            }
        };
        if became_leader {
            // Serve waves until the queue drains; the first wave contains
            // this thread's own request.  Leadership is handed off through
            // `leader_active`: a session enqueueing after the final drain
            // sees it false and leads its own wave.
            //
            // The guard covers a leader panic (e.g. inside inference):
            // without it, `leader_active` would stay true forever and every
            // queued waiter — plus all future sessions — would block
            // permanently behind a leader that no longer exists.  On unwind
            // the guard releases leadership and fails the undelivered
            // slots, so waiters propagate the panic instead of hanging.
            let mut guard = LeaderGuard { aggregator: self, wave: Vec::new(), armed: true };
            loop {
                guard.wave = {
                    let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                    if st.pending.is_empty() {
                        st.leader_active = false;
                        break;
                    }
                    std::mem::take(&mut st.pending)
                };
                let refs: Vec<&EncodedPlan> = guard.wave.iter().flat_map(|r| r.plans.as_slice()).collect();
                let results = match self.tiered_top_k {
                    Some(top_k) => self.serving.estimate_encoded_batch_tiered(&refs, top_k),
                    None => self.serving.estimate_encoded_batch(&refs),
                };
                let mut offset = 0;
                for req in guard.wave.drain(..) {
                    let n = req.plans.len;
                    req.result.set(SlotState::Ready(results[offset..offset + n].to_vec()));
                    offset += n;
                }
            }
            guard.armed = false;
        }
        slot.wait_take()
    }
}

/// Unwind protection for the aggregation leader: on a panic mid-wave,
/// release leadership and fail the in-flight and still-queued requests so
/// their sessions unblock (and re-panic) instead of waiting forever.
struct LeaderGuard<'a> {
    aggregator: &'a BatchAggregator,
    wave: Vec<Request>,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for req in self.wave.drain(..) {
            req.result.set(SlotState::Failed);
        }
        let mut st = self.aggregator.state.lock().unwrap_or_else(|e| e.into_inner());
        st.leader_active = false;
        for req in st.pending.drain(..) {
            req.result.set(SlotState::Failed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{execute_plan, CostModel};
    use estimator_core::{CostEstimator, ModelConfig, TrainConfig};
    use featurize::{EncodingConfig, FeatureExtractor};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
    use strembed::HashBitmapEncoder;

    fn fitted_estimator() -> (CostEstimator, Vec<EncodedPlan>) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
        let mut est = CostEstimator::new(
            fx,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
            TrainConfig { epochs: 2, batch_size: 8, ..Default::default() },
        );
        let cost = CostModel::default();
        let plans: Vec<PlanNode> = (0..24)
            .map(|i| {
                let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                    table: "title".into(),
                    predicate: Some(Predicate::atom(
                        "title",
                        "production_year",
                        CompareOp::Gt,
                        Operand::Num((1940 + i * 2) as f64),
                    )),
                });
                let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
                let mut join = PlanNode::inner(
                    PhysicalOp::HashJoin {
                        condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id"),
                    },
                    vec![scan_t, scan_mc],
                );
                execute_plan(&db, &mut join, &cost);
                join
            })
            .collect();
        est.fit(&plans);
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        (est, encoded)
    }

    #[test]
    fn aggregated_results_are_bit_identical_to_direct() {
        let (est, encoded) = fitted_estimator();
        let direct = est.estimate_encoded_batch_memo(&encoded);
        let agg = BatchAggregator::new(est.serving());
        let coalesced = agg.estimate(&encoded);
        let bits = |v: &[(f64, f64)]| v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&coalesced), bits(&direct));
        assert!(agg.estimate(&[]).is_empty());
    }

    #[test]
    fn tiered_aggregator_waves_match_the_tiered_serving_path() {
        let (mut est, encoded) = fitted_estimator();
        assert!(est.ensure_quantized(), "test model must quantize at least one matrix");
        let top_k = 5;
        let refs: Vec<&EncodedPlan> = encoded.iter().collect();
        let direct = est.serving().estimate_encoded_batch_tiered(&refs, top_k);
        let agg = BatchAggregator::new_tiered(est.serving(), top_k);
        assert_eq!(agg.tiered_top_k(), Some(top_k));
        let coalesced = agg.estimate(&encoded);
        let bits = |v: &[(f64, f64)]| v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&coalesced), bits(&direct));
        // The escalated candidates carry full-precision bits: at least
        // `top_k` entries agree exactly with the all-f32 memoized path.
        let full = est.estimate_encoded_batch_memo(&encoded);
        let n_exact = coalesced
            .iter()
            .zip(&full)
            .filter(|(a, b)| a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits())
            .count();
        assert!(n_exact >= top_k, "only {n_exact} of {} entries match full precision, expected >= {top_k}", full.len());
        assert!(n_exact < full.len(), "quantized tier produced full-precision bits everywhere; tiering is vacuous");
    }

    #[test]
    fn concurrent_sessions_coalesce_and_each_gets_its_own_slice() {
        let (est, encoded) = fitted_estimator();
        let expected = est.estimate_encoded_batch_memo(&encoded);
        let agg = Arc::new(BatchAggregator::new(est.serving()));
        // 8 sessions, each repeatedly requesting a distinct window of the
        // workload; every response must be that session's own slice.
        std::thread::scope(|scope| {
            for session in 0..8usize {
                let agg = Arc::clone(&agg);
                let encoded = &encoded;
                let expected = &expected;
                scope.spawn(move || {
                    let lo = session * 3;
                    let hi = lo + 3;
                    for _ in 0..20 {
                        let got = agg.estimate(&encoded[lo..hi]);
                        for (g, e) in got.iter().zip(&expected[lo..hi]) {
                            assert_eq!(g.0.to_bits(), e.0.to_bits(), "session {session} got another session's rows");
                            assert_eq!(g.1.to_bits(), e.1.to_bits());
                        }
                    }
                });
            }
        });
    }
}
