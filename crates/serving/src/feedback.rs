//! Serving-time feedback capture: what did we estimate, for which plan?
//!
//! The first stage of the online learning loop.  Every estimate a tenant
//! serves is a *free training signal waiting for a label*: if we remember
//! `(plan signature, estimate, tier)` at serving time, a background policy
//! can later execute a sampled subset through `engine::ExecMode::Count`,
//! compare truth against the recorded estimate, and decide whether the
//! model has drifted.
//!
//! Two pieces, both bounded and sharded so the hot path never blocks on a
//! global lock and memory cannot grow with traffic:
//!
//! * [`FeedbackLog`] — a sharded ring buffer of [`FeedbackRecord`]s.
//!   Writers take one shard mutex (selected by signature bits) for a push
//!   onto a `VecDeque`; when a shard is full the oldest record is
//!   overwritten, never the writer blocked.
//! * [`PlanRegistry`] — a bounded signature → plan map, filled by
//!   [`crate::Session::encode`].  The log stores 8-byte signatures, not
//!   plans; the registry turns a sampled signature back into an executable
//!   [`PlanNode`].  Registered plans are stored with annotations cleared so
//!   ground truth is always *re-measured*, never parroted from a stale
//!   label that rode in on the plan.
//!
//! [`TenantFeedback`] bundles one of each per tenant; the catalog attaches
//! it behind an `RwLock<Option<Arc<..>>>` so tenants that never opt in pay
//! a single uncontended read per batch.

use parking_lot::Mutex;
use query::plan::NodeAnnotations;
use query::PlanNode;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which serving tier produced the recorded estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedTier {
    /// The bit-exact f32 aggregator path.
    Full,
    /// The int8-first tiered path (estimates may be tier approximations).
    Tiered,
}

/// One served estimate, as remembered by the [`FeedbackLog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackRecord {
    /// Structural signature of the served plan ([`PlanNode::signature_hash`]
    /// carried through `EncodedPlan::signature`).
    pub signature: u64,
    /// Estimated cost at serving time.
    pub cost: f64,
    /// Estimated cardinality at serving time.
    pub cardinality: f64,
    /// Which tier served it.
    pub tier: ServedTier,
}

/// Number of independently-locked shards.  Requests hash across shards by
/// signature, so concurrent writers from different sessions rarely contend;
/// a power of two keeps shard selection a mask.
const LOG_SHARDS: usize = 8;

struct LogShard {
    buf: VecDeque<FeedbackRecord>,
}

/// A bounded, sharded ring buffer of served-estimate records.
///
/// Total memory is `capacity * size_of::<FeedbackRecord>()` regardless of
/// how much traffic is served: once a shard fills, each push overwrites that
/// shard's oldest record.  [`FeedbackLog::total_recorded`] and
/// [`FeedbackLog::total_overwritten`] expose the pressure so operators can
/// size the log against their sampling cadence.
pub struct FeedbackLog {
    shards: Vec<Mutex<LogShard>>,
    shard_capacity: usize,
    recorded: AtomicU64,
    overwritten: AtomicU64,
}

impl FeedbackLog {
    /// A log holding at most (about) `capacity` records; `capacity` is
    /// rounded up to a multiple of the shard count.
    pub fn new(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(LOG_SHARDS).max(1);
        FeedbackLog {
            shards: (0..LOG_SHARDS)
                .map(|_| Mutex::new(LogShard { buf: VecDeque::with_capacity(shard_capacity) }))
                .collect(),
            shard_capacity,
            recorded: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, signature: u64) -> &Mutex<LogShard> {
        // High bits: the low bits already pick registry/cache shards
        // elsewhere, and xor-folding keeps cheap signatures well spread.
        let idx = ((signature >> 32) ^ signature) as usize & (LOG_SHARDS - 1);
        &self.shards[idx]
    }

    /// Record one served estimate.  O(1), one shard mutex, never blocks on
    /// capacity: the shard's oldest record is overwritten instead.
    pub fn record(&self, record: FeedbackRecord) {
        let mut shard = self.shard_of(record.signature).lock();
        if shard.buf.len() >= self.shard_capacity {
            shard.buf.pop_front();
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        shard.buf.push_back(record);
        drop(shard);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a whole served batch.  Records are grouped by shard first so
    /// the batch costs at most one lock per *shard* (not per record) and two
    /// counter updates total — the difference between ~1% and ~10% overhead
    /// when the serving path is all cache hits.
    pub fn record_batch<'a>(&self, estimates: impl IntoIterator<Item = (&'a u64, &'a (f64, f64))>, tier: ServedTier) {
        let mut grouped: [Vec<FeedbackRecord>; LOG_SHARDS] = Default::default();
        let mut total = 0u64;
        for (&signature, &(cost, cardinality)) in estimates {
            let idx = ((signature >> 32) ^ signature) as usize & (LOG_SHARDS - 1);
            grouped[idx].push(FeedbackRecord { signature, cost, cardinality, tier });
            total += 1;
        }
        let mut overwritten = 0u64;
        for (records, mutex) in grouped.iter().zip(&self.shards) {
            if records.is_empty() {
                continue;
            }
            let mut shard = mutex.lock();
            for &record in records {
                if shard.buf.len() >= self.shard_capacity {
                    shard.buf.pop_front();
                    overwritten += 1;
                }
                shard.buf.push_back(record);
            }
        }
        if total > 0 {
            self.recorded.fetch_add(total, Ordering::Relaxed);
        }
        if overwritten > 0 {
            self.overwritten.fetch_add(overwritten, Ordering::Relaxed);
        }
    }

    /// Take every currently-held record out of the log (the sampling
    /// policy's consumption step).  Shards are drained one at a time, so
    /// records racing in during the drain land in the next cycle.
    pub fn drain(&self) -> Vec<FeedbackRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().buf.drain(..));
        }
        out
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().buf.len()).sum()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Upper bound on records held at any instant.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * LOG_SHARDS
    }

    /// Total records ever pushed (including later-overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records lost to ring overwrite since creation.
    pub fn total_overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }
}

/// A bounded signature → plan map: the bridge from an 8-byte log record back
/// to an executable plan.
///
/// Inserts are first-writer-wins and stop once the registry is full (new
/// signatures are simply not remembered until space frees up via
/// [`PlanRegistry::remove`]); signatures are structural hashes, so the plan
/// under a signature never changes and overwriting would be pure churn.
pub struct PlanRegistry {
    shards: Vec<Mutex<HashMap<u64, Arc<PlanNode>>>>,
    capacity: usize,
    len: AtomicU64,
}

/// Shard count for the registry; see [`LOG_SHARDS`].
const REGISTRY_SHARDS: usize = 8;

impl PlanRegistry {
    /// A registry remembering at most `capacity` distinct plans.
    pub fn new(capacity: usize) -> Self {
        PlanRegistry {
            shards: (0..REGISTRY_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity,
            len: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, signature: u64) -> &Mutex<HashMap<u64, Arc<PlanNode>>> {
        let idx = ((signature >> 32) ^ signature) as usize & (REGISTRY_SHARDS - 1);
        &self.shards[idx]
    }

    /// Remember `plan` under `signature` unless the signature is already
    /// registered or the registry is full.  The stored copy has **all
    /// annotations cleared**: a sampled plan must be re-executed for ground
    /// truth, not trusted to carry an up-to-date label from whenever it was
    /// first seen.  Returns whether the plan was newly inserted.
    pub fn register(&self, signature: u64, plan: &PlanNode) -> bool {
        if self.len.load(Ordering::Relaxed) >= self.capacity as u64 {
            return false;
        }
        let mut shard = self.shard_of(signature).lock();
        match shard.entry(signature) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                let mut clean = plan.clone();
                clean.visit_postorder_mut(&mut |n| n.annotations = NodeAnnotations::default());
                slot.insert(Arc::new(clean));
                self.len.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// Look up the plan registered under `signature`.
    pub fn get(&self, signature: u64) -> Option<Arc<PlanNode>> {
        self.shard_of(signature).lock().get(&signature).cloned()
    }

    /// Forget a signature, freeing capacity.
    pub fn remove(&self, signature: u64) -> bool {
        let removed = self.shard_of(signature).lock().remove(&signature).is_some();
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed) as usize
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of registered plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Capacity knobs for a tenant's feedback capture.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackConfig {
    /// Ring-buffer capacity of the served-estimate log.
    pub log_capacity: usize,
    /// Maximum distinct plans remembered for ground-truth execution.
    pub registry_capacity: usize,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig { log_capacity: 4096, registry_capacity: 1024 }
    }
}

/// Per-tenant feedback capture state: the served-estimate log plus the plan
/// registry that makes sampled signatures executable again.
pub struct TenantFeedback {
    log: FeedbackLog,
    registry: PlanRegistry,
}

impl TenantFeedback {
    /// Fresh capture state with the given bounds.
    pub fn new(config: FeedbackConfig) -> Self {
        TenantFeedback {
            log: FeedbackLog::new(config.log_capacity),
            registry: PlanRegistry::new(config.registry_capacity),
        }
    }

    /// The served-estimate log.
    pub fn log(&self) -> &FeedbackLog {
        &self.log
    }

    /// The signature → plan registry.
    pub fn registry(&self) -> &PlanRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::PhysicalOp;

    fn record(signature: u64) -> FeedbackRecord {
        FeedbackRecord { signature, cost: 10.0, cardinality: 20.0, tier: ServedTier::Full }
    }

    #[test]
    fn log_round_trips_records() {
        let log = FeedbackLog::new(64);
        log.record(FeedbackRecord { signature: 7, cost: 1.5, cardinality: 2.5, tier: ServedTier::Tiered });
        assert_eq!(log.len(), 1);
        let drained = log.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].signature, 7);
        assert_eq!(drained[0].tier, ServedTier::Tiered);
        assert!(log.is_empty(), "drain must empty the log");
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn log_memory_is_bounded_under_overflow() {
        let log = FeedbackLog::new(32);
        let cap = log.capacity();
        for sig in 0..10_000u64 {
            log.record(record(sig));
        }
        assert!(log.len() <= cap, "log held {} records, capacity {cap}", log.len());
        assert_eq!(log.total_recorded(), 10_000);
        assert_eq!(log.total_overwritten() as usize, 10_000 - log.len());
        // Ring semantics: what survives is the newest traffic, not the oldest.
        let min_surviving = log.drain().iter().map(|r| r.signature).min().unwrap();
        assert!(min_surviving > 1_000, "oldest records must have been overwritten, found {min_surviving}");
    }

    #[test]
    fn log_concurrent_writers_lose_nothing_under_capacity() {
        let log = Arc::new(FeedbackLog::new(100_000));
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 2_000;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        log.record(record(w * PER_WRITER + i));
                    }
                });
            }
        });
        assert_eq!(log.total_recorded(), WRITERS * PER_WRITER);
        assert_eq!(log.total_overwritten(), 0);
        let mut sigs: Vec<u64> = log.drain().iter().map(|r| r.signature).collect();
        sigs.sort_unstable();
        sigs.dedup();
        assert_eq!(sigs.len() as u64, WRITERS * PER_WRITER, "concurrent records must not clobber each other");
    }

    #[test]
    fn log_concurrent_writers_stay_bounded_over_capacity() {
        let log = Arc::new(FeedbackLog::new(64));
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..5_000 {
                        log.record(record(w * 5_000 + i));
                    }
                });
            }
        });
        assert!(log.len() <= log.capacity());
        assert_eq!(log.total_recorded(), 40_000);
    }

    #[test]
    fn registry_is_bounded_and_first_writer_wins() {
        let plan_a = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None });
        let plan_b = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let reg = PlanRegistry::new(4);
        assert!(reg.register(1, &plan_a));
        assert!(!reg.register(1, &plan_b), "re-registering a signature must be a no-op");
        assert_eq!(reg.get(1).unwrap().op, plan_a.op);
        for sig in 2..=4 {
            assert!(reg.register(sig, &plan_b));
        }
        assert!(!reg.register(99, &plan_a), "a full registry must refuse new plans");
        assert_eq!(reg.len(), 4);
        assert!(reg.get(99).is_none());
        // Removing frees capacity for a new signature.
        assert!(reg.remove(2));
        assert!(reg.register(99, &plan_a));
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn registry_clears_annotations_on_register() {
        let mut plan = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None });
        plan.annotations.true_cardinality = Some(123.0);
        plan.annotations.true_cost = Some(456.0);
        let reg = PlanRegistry::new(4);
        reg.register(1, &plan);
        let stored = reg.get(1).unwrap();
        assert_eq!(stored.annotations, NodeAnnotations::default(), "stale labels must not survive registration");
    }
}
