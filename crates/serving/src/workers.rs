//! Pinned thread-per-core worker runtime with sharded-cache work stealing.
//!
//! [`WorkerPool`] owns a fixed set of worker threads, one queue per worker.
//! Each worker is pinned to a core where the platform allows it (raw
//! `sched_setaffinity` on x86_64 Linux; a graceful no-op elsewhere — the
//! pool works identically, the threads just float), and owns a private
//! [`SubtreeStateCache`] shard handed to every job it runs through
//! [`WorkerContext`].  A worker whose own queue is empty **steals** from the
//! back of its siblings' queues, so one oversized submission spreads across
//! idle cores instead of serializing behind one thread.
//!
//! Numerical safety of stealing: a stolen job runs against the *thief's*
//! cache shard, not the victim's.  That is only sound because the memoized
//! batch path is bit-identical to fresh computation regardless of cache
//! contents (the column-independence contract pinned by
//! `memoized_inference_is_bit_identical_*` in `estimator_core`) — which
//! cache a chunk warms changes future hit rates, never a served value.
//!
//! Cache ownership: the shards hold model-specific subtree states keyed by
//! plan signature, so **one pool serves one model generation**.  A tenant
//! that hot-swaps its model must call [`WorkerPool::clear_caches`] (or
//! build a fresh pool) before routing waves for the new weights through it,
//! exactly like `CostEstimator` replaces its own cache on re-fit.

use estimator_core::SubtreeStateCache;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: runs once on some worker, with that worker's context.
pub type Job = Box<dyn FnOnce(&WorkerContext) + Send + 'static>;

/// What a job sees of the worker executing it.
pub struct WorkerContext {
    index: usize,
    cache: Arc<SubtreeStateCache>,
}

impl WorkerContext {
    /// Index of the executing worker (stable for the pool's lifetime).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The executing worker's private subtree-state cache shard.
    pub fn cache(&self) -> &SubtreeStateCache {
        self.cache.as_ref()
    }
}

/// Aggregate execution counters for a pool (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Jobs executed, on any worker.
    pub executed: u64,
    /// Jobs a worker took from a *sibling's* queue (subset of `executed`).
    pub stolen: u64,
    /// Workers whose core pin succeeded (0 on platforms without affinity).
    pub pinned: usize,
}

struct PoolShared {
    /// One job queue per worker; the owner pops from the front, thieves
    /// pop from the back (oldest submissions migrate first, keeping the
    /// owner's cache-warm tail local).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Per-worker cache shards (mirrors `queues`); cloned into each
    /// worker's [`WorkerContext`] and reachable here for `clear_caches`.
    caches: Vec<Arc<SubtreeStateCache>>,
    /// Wake-up version counter: bumped under its lock on every submit and
    /// on shutdown, so a worker that scanned every queue empty can sleep
    /// without losing a wakeup (it re-checks the version it scanned at).
    version: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    executed: AtomicU64,
    stolen: AtomicU64,
}

/// A fixed pool of pinned worker threads with per-worker queues, private
/// cache shards, and sibling work stealing.  See the module docs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    next: AtomicU64,
    pinned: usize,
}

impl WorkerPool {
    /// Spawn `workers` pinned threads (`workers` is clamped to at least 1).
    /// Worker `i` is pinned to core `i % available cores`; on platforms
    /// without thread affinity the pin is a recorded no-op.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            caches: (0..workers).map(|_| Arc::new(SubtreeStateCache::new())).collect(),
            version: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        });
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let pin_results: Arc<Vec<AtomicBool>> = Arc::new((0..workers).map(|_| AtomicBool::new(false)).collect());
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let pin_results = Arc::clone(&pin_results);
                std::thread::Builder::new()
                    .name(format!("serving-worker-{index}"))
                    .spawn(move || {
                        pin_results[index].store(pin_to_core(index % cores), Ordering::Release);
                        worker_loop(&shared, index);
                    })
                    .expect("spawn serving worker thread")
            })
            .collect();
        // Pin outcomes land before each worker's first dequeue; a short
        // settle loop keeps `stats()` deterministic without blocking long.
        for flag in pin_results.iter() {
            for _ in 0..1000 {
                if flag.load(Ordering::Acquire) {
                    break;
                }
                std::thread::yield_now();
            }
        }
        let pinned = pin_results.iter().filter(|f| f.load(Ordering::Acquire)).count();
        WorkerPool { shared, handles, next: AtomicU64::new(0), pinned }
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.shared.queues.len()
    }

    /// Always false — the pool spawns at least one worker.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Enqueue a job on the next worker's queue (round-robin).
    pub fn submit(&self, job: Job) {
        let n = self.len() as u64;
        let target = (self.next.fetch_add(1, Ordering::Relaxed) % n) as usize;
        self.submit_to(target, job);
    }

    /// Enqueue a job on a specific worker's queue.  The job still runs on
    /// *some* worker: siblings steal from this queue when idle.
    ///
    /// # Panics
    /// Panics if `worker >= self.len()`.
    pub fn submit_to(&self, worker: usize, job: Job) {
        self.shared.queues[worker].lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
        let mut v = self.shared.version.lock().unwrap_or_else(|e| e.into_inner());
        *v += 1;
        drop(v);
        self.shared.wake.notify_all();
    }

    /// Execution counters since construction.
    pub fn stats(&self) -> WorkerStats {
        WorkerStats {
            workers: self.len(),
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            pinned: self.pinned,
        }
    }

    /// Clear every worker's cache shard — required when re-binding the
    /// pool to a new model generation (see the module docs).
    pub fn clear_caches(&self) {
        for cache in &self.shared.caches {
            cache.clear();
        }
    }

    /// Summed `(hits, misses)` across all worker cache shards.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shared.caches.iter().map(|c| c.stats()).fold((0, 0), |(h, m), (ch, cm)| (h + ch, m + cm))
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut v = self.shared.version.lock().unwrap_or_else(|e| e.into_inner());
            *v += 1;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Take the next job for `index`: its own queue front first, then a sweep
/// over siblings' queue backs.  Returns the job and whether it was stolen.
fn next_job(shared: &PoolShared, index: usize) -> Option<(Job, bool)> {
    if let Some(job) = shared.queues[index].lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
        return Some((job, false));
    }
    let n = shared.queues.len();
    for off in 1..n {
        let victim = (index + off) % n;
        if let Some(job) = shared.queues[victim].lock().unwrap_or_else(|e| e.into_inner()).pop_back() {
            return Some((job, true));
        }
    }
    None
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let ctx = WorkerContext { index, cache: Arc::clone(&shared.caches[index]) };
    loop {
        // Snapshot the version *before* scanning: a submit that lands after
        // the scan bumps it, so the sleep below can't miss that wakeup.
        let seen = *shared.version.lock().unwrap_or_else(|e| e.into_inner());
        let mut ran_any = false;
        while let Some((job, stolen)) = next_job(shared, index) {
            ran_any = true;
            if stolen {
                shared.stolen.fetch_add(1, Ordering::Relaxed);
            }
            shared.executed.fetch_add(1, Ordering::Relaxed);
            // A panicking job must not kill the worker: result delivery and
            // panic propagation are the job closure's own responsibility
            // (the aggregator posts a Failed chunk), this is the backstop
            // that keeps the queue draining.
            let _ = catch_unwind(AssertUnwindSafe(|| job(&ctx)));
        }
        if ran_any {
            continue;
        }
        // Every queue was empty at the scan.  Exit only on shutdown — and
        // only after that final empty sweep, so no accepted job is dropped.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut v = shared.version.lock().unwrap_or_else(|e| e.into_inner());
        while *v == seen && !shared.shutdown.load(Ordering::Acquire) {
            v = shared.wake.wait(v).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Pin the calling thread to `core`.  Returns whether the pin took effect.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn pin_to_core(core: usize) -> bool {
    // Raw `sched_setaffinity(0, sizeof mask, &mask)` — syscall 203 on
    // x86_64 Linux; pid 0 means the calling thread.  1024-bit mask, the
    // kernel's default CPU-set width.
    let mut mask = [0u64; 16];
    mask[(core / 64) % mask.len()] |= 1u64 << (core % 64);
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0i64,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// No thread-affinity support on this platform: the pool still works, its
/// threads just float (recorded as `pinned: 0` in [`WorkerStats`]).
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn pin_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_execute_with_per_worker_context_and_counters() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        let (tx, rx) = mpsc::channel::<(usize, usize)>();
        let n_jobs = 48;
        for _ in 0..n_jobs {
            let tx = tx.clone();
            pool.submit(Box::new(move |ctx| {
                tx.send((ctx.index(), ctx.cache() as *const SubtreeStateCache as usize)).unwrap();
            }));
        }
        let mut seen: Vec<(usize, usize)> = Vec::new();
        for _ in 0..n_jobs {
            seen.push(rx.recv_timeout(Duration::from_secs(20)).expect("job completed"));
        }
        let stats = pool.stats();
        assert_eq!(stats.executed, n_jobs as u64);
        assert_eq!(stats.workers, 3);
        assert!(stats.pinned <= 3);
        // Each worker owns exactly one cache shard: the (index, cache ptr)
        // pairing is a bijection over the workers that ran jobs.
        let mut shard_of = std::collections::HashMap::new();
        for (index, cache_ptr) in &seen {
            assert!(*index < 3);
            let prev = shard_of.insert(*index, *cache_ptr);
            assert!(prev.is_none_or(|p| p == *cache_ptr), "worker {index} switched cache shards");
        }
        let distinct: std::collections::HashSet<usize> = shard_of.values().copied().collect();
        assert_eq!(distinct.len(), shard_of.len(), "two workers share a cache shard");
    }

    #[test]
    fn idle_workers_steal_from_a_loaded_queue() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel::<usize>();
        let n_jobs = 32;
        // Everything lands on worker 0's queue; each job is slow enough
        // that its siblings go idle and must steal to finish the batch.
        for _ in 0..n_jobs {
            let tx = tx.clone();
            pool.submit_to(
                0,
                Box::new(move |ctx| {
                    std::thread::sleep(Duration::from_millis(2));
                    tx.send(ctx.index()).unwrap();
                }),
            );
        }
        let mut ran_on: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for _ in 0..n_jobs {
            ran_on.insert(rx.recv_timeout(Duration::from_secs(20)).expect("job completed"));
        }
        let stats = pool.stats();
        assert_eq!(stats.executed, n_jobs as u64);
        assert!(stats.stolen > 0, "a fully loaded single queue must shed work to idle siblings");
        assert!(ran_on.len() > 1, "stolen jobs must actually run on sibling workers");
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(Box::new(|_| panic!("job panic must stay contained")));
        let (tx, rx) = mpsc::channel::<()>();
        pool.submit(Box::new(move |_| tx.send(()).unwrap()));
        rx.recv_timeout(Duration::from_secs(20)).expect("worker survived the panicking job");
        assert_eq!(pool.stats().executed, 2);
    }

    #[test]
    fn drop_drains_accepted_jobs_before_join() {
        let counter = Arc::new(AtomicU64::new(0));
        let n_jobs = 64;
        {
            let pool = WorkerPool::new(2);
            for _ in 0..n_jobs {
                let counter = Arc::clone(&counter);
                pool.submit(Box::new(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), n_jobs, "drop must not discard accepted jobs");
    }

    #[test]
    fn clear_caches_empties_every_shard() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel::<usize>();
        for worker in 0..2 {
            let tx = tx.clone();
            pool.submit_to(
                worker,
                Box::new(move |ctx| {
                    let state = estimator_core::SubtreeState { g: vec![0.5], r: vec![0.5] };
                    ctx.cache().insert(0xdead_beef + ctx.index() as u64, Arc::new(state));
                    tx.send(ctx.cache().len()).unwrap();
                }),
            );
        }
        for _ in 0..2 {
            let _ = rx.recv_timeout(Duration::from_secs(20)).expect("insert ran");
        }
        pool.clear_caches();
        let (tx, rx) = mpsc::channel::<usize>();
        for worker in 0..2 {
            let tx = tx.clone();
            pool.submit_to(worker, Box::new(move |ctx| tx.send(ctx.cache().len()).unwrap()));
        }
        for _ in 0..2 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(20)).expect("len ran"), 0, "shard survived clear_caches");
        }
    }
}
