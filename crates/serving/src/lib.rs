//! Multi-tenant serving runtime.
//!
//! One process, many trained models, many concurrent optimizer sessions —
//! the production posture the paper's estimator needs inside a real
//! database.  Three pieces:
//!
//! * [`ModelCatalog`] — a named catalog of checkpoint-loaded backends (any
//!   [`estimator_core::Estimator`]).  Publishing a new model under an
//!   existing name is an **atomic hot-swap**: the tenant's `Arc` slot is
//!   replaced under a per-tenant lock held for nanoseconds, in-flight
//!   sessions finish on the model they pinned, and sessions on *other*
//!   tenants never touch the swapped tenant's lock at all.  Each published
//!   model owns its own sharded caches (they arrive freshly invalidated
//!   from `load_checkpoint`), so tenants cannot evict each other and a
//!   swap can never serve a stale subtree state.
//! * [`Session`] — a tenant-scoped client handle.  Every estimate call
//!   pins the tenant's current model generation, so a session observes a
//!   hot-swap at its next call boundary while the batch it already
//!   submitted completes on the old weights.
//! * [`BatchAggregator`] — the admission layer: estimate requests arriving
//!   concurrently from sessions of the **same** tenant are coalesced into
//!   one level-batched, subtree-memoized inference call
//!   (`estimate_encoded_batch_memo`), amortizing the blocked matmuls
//!   across sessions exactly like PR 1/PR 3 amortized them within one.
//! * [`WorkerPool`] — the execution layer under the aggregator: a pinned
//!   thread-per-core pool with per-worker [`estimator_core::SubtreeStateCache`]
//!   shards and sibling work stealing.  An aggregator built
//!   [`BatchAggregator::with_workers`] splits each oversized full-precision
//!   wave across the pool instead of serializing it behind the leader
//!   session's thread; results stay bit-identical because the memoized
//!   batch path is column-independent.
//!
//! Ownership is the load-bearing design: `CostEstimator::serving()` hands
//! out an *owned* `ServingEstimator` (model + cache behind `Arc`s), so a
//! model's lifetime is decoupled from its trainer and from the catalog
//! slot it was published under.  Nothing here blocks on a global lock —
//! the catalog map is only write-locked to add/remove tenant *names*.
//!
//! On top of the frozen-model runtime sits the **online learning loop**
//! (PR 7): [`ModelCatalog::enable_feedback`] makes a tenant's sessions
//! record `(plan signature, estimate, tier)` into a bounded, sharded
//! [`FeedbackLog`] and remember encoded plans in a bounded
//! [`PlanRegistry`]; a [`RefreshController`], ticked from a background
//! thread, executes a sampled subset for exact ground truth
//! (`engine::ExecMode::Count`), watches windowed q-error against a frozen
//! baseline ([`metrics::QErrorWindow`]), and on drift fine-tunes a training
//! replica and republishes it through the catalog's ordinary zero-downtime
//! hot-swap.

mod aggregate;
mod catalog;
mod feedback;
mod refresh;
mod workers;

pub use aggregate::{BatchAggregator, WaveStats};
pub use catalog::{BackendFactory, ModelCatalog, Session, TenantBackend, TenantModel, DEFAULT_TIERED_TOP_K};
pub use feedback::{FeedbackConfig, FeedbackLog, FeedbackRecord, PlanRegistry, ServedTier, TenantFeedback};
pub use refresh::{RefreshConfig, RefreshController, RefreshOutcome};
pub use workers::{Job, WorkerContext, WorkerPool, WorkerStats};
