//! The adapt stage of the online learning loop: sample ground truth, detect
//! drift, fine-tune, republish.
//!
//! A [`RefreshController`] owns one tenant's loop state: a **training
//! replica** of the served model (fine-tuning never touches the weights the
//! catalog is serving), a [`metrics::QErrorWindow`] tracking recent accuracy
//! against a frozen baseline, and a bounded buffer of labeled plans awaiting
//! a fine-tune.  Driving the loop is one method — [`RefreshController::tick`]
//! — meant to be called periodically from a background thread, never from
//! the serving path:
//!
//! 1. **drain** the tenant's [`crate::FeedbackLog`], dedup by plan signature
//!    (keeping the newest estimate per plan);
//! 2. **sample** a seeded subset within the ground-truth execution budget,
//!    resolve each signature through the [`crate::PlanRegistry`] and execute
//!    it with `engine::ExecMode::Count` — cheap exact cardinalities;
//! 3. **observe**: push each plan's cardinality q-error into the window;
//!    the first full window freezes the tenant's healthy baseline;
//! 4. **adapt**: when the windowed mean degrades past
//!    `baseline * drift_factor` and enough labeled pairs have accumulated,
//!    extend the replica's epoch budget, fine-tune with
//!    `CostEstimator::fit_resumed_encoded` (falling back to a full
//!    `fit_encoded` when the replica carries no resumable state — the typed
//!    error this PR introduced), save a v3 checkpoint and republish through
//!    [`crate::ModelCatalog::install_checkpoint`].
//!
//! The republish is the catalog's ordinary atomic hot-swap: in-flight
//! batches finish on the old weights, the new model is re-quantized on
//! publish, and sessions observe the new generation at their next call.

use crate::catalog::ModelCatalog;
use crate::feedback::{FeedbackRecord, TenantFeedback};
use engine::{execute_plan_mode, CostModel, ExecMode};
use estimator_core::{CheckpointError, CostEstimator};
use featurize::EncodedPlan;
use imdb::Database;
use metrics::{q_error, QErrorWindow};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

/// Tuning knobs for one tenant's refresh loop.
#[derive(Debug, Clone)]
pub struct RefreshConfig {
    /// Maximum ground-truth executions per [`RefreshController::tick`].
    pub sample_budget: usize,
    /// Sliding-window size for drift detection.
    pub window: usize,
    /// Drift fires when `window mean > baseline * drift_factor`.
    pub drift_factor: f64,
    /// Minimum labeled pairs accumulated before a fine-tune is attempted.
    pub min_pairs: usize,
    /// Extra epochs granted to the training replica per fine-tune.
    pub fine_tune_epochs: usize,
    /// Bound on buffered labeled pairs (oldest dropped first).
    pub max_pending: usize,
    /// Seed for the sampling policy (deterministic given the same traffic).
    pub seed: u64,
    /// Where the fine-tuned checkpoint is written before republish; defaults
    /// to a per-process file in the system temp directory.
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            sample_budget: 64,
            window: 32,
            drift_factor: 1.5,
            min_pairs: 32,
            fine_tune_epochs: 2,
            max_pending: 1024,
            seed: 0x5eed_f00d,
            checkpoint_path: None,
        }
    }
}

/// What one [`RefreshController::tick`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum RefreshOutcome {
    /// Nothing in the log (or nothing resolvable through the registry).
    Idle,
    /// Ground truth was sampled; no refresh was warranted (or possible yet).
    Observed {
        /// Plans executed for ground truth this tick.
        sampled: usize,
        /// Current windowed mean q-error, if any observations exist.
        window_mean: Option<f64>,
        /// The frozen baseline, once the first window filled.
        baseline: Option<f64>,
        /// Whether drift was detected but the fine-tune gate (`min_pairs`)
        /// was not yet met.
        drifted: bool,
    },
    /// Drift was confirmed and a fine-tuned model was republished.
    Refreshed {
        /// The generation the catalog now serves for this tenant.
        generation: u64,
        /// Plans executed for ground truth this tick.
        sampled: usize,
        /// Labeled pairs the fine-tune trained on.
        pairs: usize,
        /// Windowed mean q-error that triggered the refresh.
        window_mean: f64,
        /// The baseline it was compared against.
        baseline: f64,
        /// True when the replica could not resume training (no resumable
        /// state) and the controller fell back to a full refit.
        refit_fallback: bool,
    },
}

/// Drives capture → sample → detect → adapt for one tenant.
pub struct RefreshController {
    catalog: Arc<ModelCatalog>,
    tenant: String,
    feedback: Arc<TenantFeedback>,
    db: Arc<Database>,
    /// The training replica: same weights as the published model at
    /// construction time, fine-tuned in place, never served directly.
    trainer: CostEstimator,
    window: QErrorWindow,
    pending: VecDeque<EncodedPlan>,
    config: RefreshConfig,
    rng: u64,
}

impl RefreshController {
    /// Build a controller for `tenant`.  `trainer` must hold the same
    /// weights as the tenant's published model (load it from the checkpoint
    /// that was installed, or move in the estimator that trained it) —
    /// otherwise the first fine-tune starts from different parameters than
    /// the traffic that triggered it was served with.
    ///
    /// The tenant must have a backend factory registered
    /// ([`ModelCatalog::register_factory`]): republish goes through
    /// [`ModelCatalog::install_checkpoint`] so the rolled-out model is
    /// exactly what a process restart would load.
    pub fn new(
        catalog: Arc<ModelCatalog>,
        tenant: impl Into<String>,
        feedback: Arc<TenantFeedback>,
        db: Arc<Database>,
        trainer: CostEstimator,
        config: RefreshConfig,
    ) -> Self {
        let tenant = tenant.into();
        let window = QErrorWindow::new(config.window.max(1));
        let rng = config.seed ^ 0x9e37_79b9_7f4a_7c15;
        RefreshController { catalog, tenant, feedback, db, trainer, window, pending: VecDeque::new(), config, rng }
    }

    /// The drift-detection window (for observability/tests).
    pub fn window(&self) -> &QErrorWindow {
        &self.window
    }

    /// Labeled pairs currently buffered for the next fine-tune.
    pub fn pending_pairs(&self) -> usize {
        self.pending.len()
    }

    /// The training replica (read-only; fine-tunes happen inside `tick`).
    pub fn trainer(&self) -> &CostEstimator {
        &self.trainer
    }

    fn next_rand(&mut self) -> u64 {
        // splitmix64: tiny, seedable, plenty for subsampling — keeps the
        // serving crate free of an RNG dependency.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Dedup drained records by signature (newest estimate wins — shards
    /// drain oldest-first, and one signature always lands in one shard) and
    /// pick at most `sample_budget` of them, uniformly via a partial
    /// Fisher–Yates driven by the controller's seeded RNG.
    fn sample(&mut self, drained: Vec<FeedbackRecord>) -> Vec<FeedbackRecord> {
        let mut newest: HashMap<u64, FeedbackRecord> = HashMap::with_capacity(drained.len());
        for record in drained {
            newest.insert(record.signature, record);
        }
        let mut unique: Vec<FeedbackRecord> = newest.into_values().collect();
        // HashMap iteration order is seed-dependent; sort for a
        // deterministic sampling frame before the seeded shuffle.
        unique.sort_by_key(|r| r.signature);
        let budget = self.config.sample_budget.min(unique.len());
        for i in 0..budget {
            let j = i + (self.next_rand() as usize) % (unique.len() - i);
            unique.swap(i, j);
        }
        unique.truncate(budget);
        unique
    }

    /// Run one capture→sample→detect→adapt cycle.  Cheap when the log is
    /// empty; executes at most `sample_budget` plans otherwise.  Never
    /// called on the serving path.
    ///
    /// # Errors
    /// Propagates checkpoint save/install failures from the republish step;
    /// the catalog keeps serving the previous generation in that case, and
    /// the buffered pairs are retained for the next attempt.
    pub fn tick(&mut self) -> Result<RefreshOutcome, CheckpointError> {
        let drained = self.feedback.log().drain();
        let sampled_records = self.sample(drained);
        let mut sampled = 0usize;
        for record in &sampled_records {
            let Some(plan) = self.feedback.registry().get(record.signature) else {
                // Logged before the registry learned the plan (or the
                // registry was full): unresolvable, skip.
                continue;
            };
            let mut plan = (*plan).clone();
            let truth = execute_plan_mode(&self.db, &mut plan, &CostModel::default(), ExecMode::Count);
            sampled += 1;
            self.window.push(q_error(record.cardinality, truth.cardinality));
            // `execute_plan_mode` annotated the plan in place; encoding it
            // now captures the fresh labels for fine-tuning.
            self.pending.push_back(self.trainer.encode(&plan));
            while self.pending.len() > self.config.max_pending {
                self.pending.pop_front();
            }
        }
        if sampled == 0 {
            return Ok(RefreshOutcome::Idle);
        }
        // The first full window defines "healthy" for this model.
        if self.window.baseline().is_none() && self.window.is_full() {
            self.window.freeze_baseline();
        }
        let drifted = self.window.is_drifted(self.config.drift_factor);
        if !(drifted && self.pending.len() >= self.config.min_pairs) {
            return Ok(RefreshOutcome::Observed {
                sampled,
                window_mean: self.window.mean(),
                baseline: self.window.baseline(),
                drifted,
            });
        }

        // Adapt: fine-tune the replica off the serving path and republish.
        let window_mean = self.window.mean().unwrap_or(f64::NAN);
        let baseline = self.window.baseline().unwrap_or(f64::NAN);
        let pairs: Vec<EncodedPlan> = self.pending.iter().cloned().collect();
        self.trainer.extend_training_epochs(self.config.fine_tune_epochs);
        let refit_fallback = match self.trainer.fit_resumed_encoded(&pairs) {
            Ok(_) => false,
            // The satellite bugfix in action: a replica without resumable
            // training state (e.g. restored from a model-only checkpoint)
            // now yields a typed error instead of aborting the server, and
            // the controller falls back to a full refit on the fresh pairs.
            Err(CheckpointError::Unsupported(_)) => {
                self.trainer.fit_encoded(&pairs);
                true
            }
            Err(other) => return Err(other),
        };
        let path = self.config.checkpoint_path.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("refresh-{}-{}.ckpt", self.tenant, std::process::id()))
        });
        self.trainer.save_checkpoint(&path)?;
        let generation = self.catalog.install_checkpoint(&self.tenant, &path)?;
        // Only now that the swap landed: discard the evidence that belonged
        // to the replaced model.  The baseline survives — it describes the
        // accuracy this tenant considers healthy, not one model's weights.
        self.window.clear();
        self.pending.clear();
        Ok(RefreshOutcome::Refreshed { generation, sampled, pairs: pairs.len(), window_mean, baseline, refit_fallback })
    }
}
