//! Feature extraction and encoding (Section 4.1 of the paper).
//!
//! Encodes physical plan nodes into the four feature groups the model
//! consumes — Operation, Metadata, Predicate and Sample Bitmap — and whole
//! plans into tree-shaped tensors with the true cost/cardinality attached as
//! training targets.
//!
//! * [`config::EncodingConfig`] fixes every one-hot dictionary and vector
//!   width up-front from the database schema.
//! * [`encode::FeatureExtractor`] performs the encoding, delegating string
//!   operands to a pluggable [`strembed::StringEncoder`] so the model
//!   variants of Table 9 (hash bitmap vs. embeddings with/without rules) are
//!   just different extractor configurations.

pub mod config;
pub mod encode;

pub use config::EncodingConfig;
pub use encode::{EncodedPlan, EncodedPlanCache, FeatureExtractor, LocalEncodeCache, NodeFeatures, PredicateEncoding};
