//! Plan-node feature extraction (Section 4.1).
//!
//! Every plan node is encoded into the four feature groups of the paper —
//! Operation, Metadata, Predicate and Sample Bitmap — and the plan tree is
//! encoded into an [`EncodedPlan`] mirroring its structure, with the true
//! cost/cardinality attached as training targets.

use crate::config::EncodingConfig;
use imdb::Database;
use query::{AtomPredicate, CompareOp, Operand, PhysicalOp, PlanNode, Predicate};
use std::sync::Arc;
use strembed::StringEncoder;

/// Encoded predicate tree: the min/max pooling model consumes the structure,
/// the tree-LSTM predicate variant consumes its DFS linearization.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateEncoding {
    /// No predicate on this node.
    None,
    /// An encoded atomic predicate.
    Atom(Vec<f32>),
    /// Conjunction of two sub-predicates (min pooling).
    And(Box<PredicateEncoding>, Box<PredicateEncoding>),
    /// Disjunction of two sub-predicates (max pooling).
    Or(Box<PredicateEncoding>, Box<PredicateEncoding>),
}

impl PredicateEncoding {
    /// Number of atom vectors in the encoding.
    pub fn num_atoms(&self) -> usize {
        match self {
            PredicateEncoding::None => 0,
            PredicateEncoding::Atom(_) => 1,
            PredicateEncoding::And(l, r) | PredicateEncoding::Or(l, r) => l.num_atoms() + r.num_atoms(),
        }
    }

    /// DFS linearization of the atom vectors (the one-to-one sequence mapping
    /// of Figure 4, without the explicit backtracking padding — structure is
    /// recovered from the tree itself).
    pub fn dfs_atoms(&self) -> Vec<&[f32]> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a [f32]>) {
        match self {
            PredicateEncoding::None => {}
            PredicateEncoding::Atom(v) => out.push(v),
            PredicateEncoding::And(l, r) | PredicateEncoding::Or(l, r) => {
                l.collect(out);
                r.collect(out);
            }
        }
    }
}

/// The four encoded feature groups of one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFeatures {
    pub operation: Vec<f32>,
    pub metadata: Vec<f32>,
    pub predicate: PredicateEncoding,
    pub sample_bitmap: Vec<f32>,
}

/// An encoded plan node: features, children and training targets.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedPlan {
    pub features: NodeFeatures,
    pub children: Vec<EncodedPlan>,
    /// True cardinality of this sub-plan (training target).
    pub true_cardinality: f64,
    /// True cumulative cost of this sub-plan (training target).
    pub true_cost: f64,
    /// 64-bit structural signature of the source sub-plan
    /// ([`query::PlanNode::signature_hash`]) — the key under which the
    /// serving layer memoizes this subtree's representation states.
    pub signature: u64,
}

impl EncodedPlan {
    /// Number of nodes in the encoded tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    /// Height of the encoded tree.
    pub fn height(&self) -> usize {
        1 + self.children.iter().map(|c| c.height()).max().unwrap_or(0)
    }
}

/// The feature extractor: encoding configuration + string encoder + database
/// handle (for sample bitmaps).
pub struct FeatureExtractor {
    config: EncodingConfig,
    string_encoder: Arc<dyn StringEncoder>,
    db: Arc<Database>,
    /// When false the sample bitmap is omitted (all zeros) — the `NS`
    /// ("no sample") model variants of Table 6.
    pub use_sample_bitmap: bool,
}

impl FeatureExtractor {
    /// Create an extractor.
    pub fn new(db: Arc<Database>, config: EncodingConfig, string_encoder: Arc<dyn StringEncoder>) -> Self {
        FeatureExtractor { config, string_encoder, db, use_sample_bitmap: true }
    }

    /// The encoding configuration.
    pub fn config(&self) -> &EncodingConfig {
        &self.config
    }

    /// Encode a raw string operand through the extractor's string encoder.
    ///
    /// Exposed so model checkpoints can fingerprint the encoder: two
    /// extractors with identical one-hot dictionaries but different string
    /// encoders (different embedding dictionaries, different rules) produce
    /// different encodings for the same probe strings.
    pub fn encode_string_operand(&self, s: &str, op: CompareOp) -> Vec<f32> {
        self.string_encoder.encode(s, op)
    }

    /// Encode an atomic predicate into
    /// `column one-hot ⧺ operator one-hot ⧺ numeric slot ⧺ string encoding`.
    pub fn encode_atom(&self, atom: &AtomPredicate) -> Vec<f32> {
        let cfg = &self.config;
        let mut v = vec![0.0f32; cfg.atom_dim()];
        if let Some(&pos) = cfg.column_pos.get(&(atom.table.clone(), atom.column.clone())) {
            v[pos] = 1.0;
        }
        let op_base = cfg.column_pos.len();
        v[op_base + atom.op.index()] = 1.0;
        let operand_base = op_base + query::CompareOp::ALL.len();
        match &atom.operand {
            Operand::Num(x) => {
                v[operand_base] = cfg.normalize_numeric(&atom.table, &atom.column, *x) as f32;
            }
            Operand::Str(s) => {
                let enc = self.string_encoder.encode(s, atom.op);
                for (i, x) in enc.iter().take(cfg.string_dim).enumerate() {
                    v[operand_base + 1 + i] = *x;
                }
            }
            Operand::StrList(items) => {
                // IN lists: average the encodings of the list members.
                if !items.is_empty() {
                    let mut acc = vec![0.0f32; cfg.string_dim];
                    for s in items {
                        let enc = self.string_encoder.encode(s, atom.op);
                        for (a, x) in acc.iter_mut().zip(enc.iter()) {
                            *a += x;
                        }
                    }
                    for (i, a) in acc.iter().enumerate() {
                        v[operand_base + 1 + i] = a / items.len() as f32;
                    }
                }
            }
        }
        v
    }

    /// Encode a (possibly compound) predicate into its tree encoding.
    pub fn encode_predicate(&self, predicate: Option<&Predicate>) -> PredicateEncoding {
        match predicate {
            None => PredicateEncoding::None,
            Some(Predicate::Atom(a)) => PredicateEncoding::Atom(self.encode_atom(a)),
            Some(Predicate::And(l, r)) => PredicateEncoding::And(
                Box::new(self.encode_predicate(Some(l))),
                Box::new(self.encode_predicate(Some(r))),
            ),
            Some(Predicate::Or(l, r)) => PredicateEncoding::Or(
                Box::new(self.encode_predicate(Some(l))),
                Box::new(self.encode_predicate(Some(r))),
            ),
        }
    }

    /// Encode the metadata bitmap of a node (tables ⧺ columns ⧺ indexes).
    pub fn encode_metadata(&self, node: &PlanNode) -> Vec<f32> {
        let cfg = &self.config;
        let mut v = vec![0.0f32; cfg.metadata_dim()];
        let col_base = cfg.table_pos.len();
        let idx_base = col_base + cfg.column_pos.len();

        let mark_column = |table: &str, column: &str, v: &mut Vec<f32>| {
            if let Some(&p) = cfg.column_pos.get(&(table.to_string(), column.to_string())) {
                v[col_base + p] = 1.0;
            }
            if let Some(&p) = cfg.index_pos.get(&(table.to_string(), column.to_string())) {
                v[idx_base + p] = 1.0;
            }
        };

        match &node.op {
            PhysicalOp::SeqScan { table, predicate } | PhysicalOp::IndexScan { table, predicate, .. } => {
                if let Some(&p) = cfg.table_pos.get(table) {
                    v[p] = 1.0;
                }
                if let PhysicalOp::IndexScan { index_column, .. } = &node.op {
                    mark_column(table, index_column, &mut v);
                }
                if let Some(pred) = predicate {
                    for atom in pred.atoms() {
                        mark_column(&atom.table, &atom.column, &mut v);
                    }
                }
            }
            PhysicalOp::HashJoin { condition }
            | PhysicalOp::MergeJoin { condition }
            | PhysicalOp::NestedLoopJoin { condition } => {
                for (t, c) in
                    [(&condition.left_table, &condition.left_column), (&condition.right_table, &condition.right_column)]
                {
                    if let Some(&p) = cfg.table_pos.get(t.as_str()) {
                        v[p] = 1.0;
                    }
                    mark_column(t, c, &mut v);
                }
            }
            PhysicalOp::Sort { table, columns } => {
                if let Some(&p) = cfg.table_pos.get(table) {
                    v[p] = 1.0;
                }
                for c in columns {
                    mark_column(table, c, &mut v);
                }
            }
            PhysicalOp::Aggregate { .. } => {}
        }
        v
    }

    /// Encode the sample bitmap of a node: bit `i` is 1 when sampled row `i`
    /// of the scanned table satisfies the node's predicate.
    pub fn encode_sample_bitmap(&self, node: &PlanNode) -> Vec<f32> {
        let cfg = &self.config;
        if !self.use_sample_bitmap {
            return vec![0.0; cfg.sample_dim()];
        }
        let (table, predicate) = match &node.op {
            PhysicalOp::SeqScan { table, predicate } | PhysicalOp::IndexScan { table, predicate, .. } => {
                (table.as_str(), predicate.as_ref())
            }
            _ => return vec![0.0; cfg.sample_dim()],
        };
        let Some(pred) = predicate else { return vec![0.0; cfg.sample_dim()] };
        let (Some(sample), Some(tab)) = (self.db.sample(table), self.db.table(table)) else {
            return vec![0.0; cfg.sample_dim()];
        };
        let mut bits = sample.bitmap(|row| pred.matches_row(tab, row));
        bits.resize(cfg.sample_dim(), 0.0);
        bits
    }

    /// Encode one node's four feature groups.
    pub fn encode_node(&self, node: &PlanNode) -> NodeFeatures {
        let mut operation = vec![0.0f32; self.config.operation_dim()];
        operation[node.op.one_hot_index()] = 1.0;
        NodeFeatures {
            operation,
            metadata: self.encode_metadata(node),
            predicate: self.encode_predicate(node.op.predicate()),
            sample_bitmap: self.encode_sample_bitmap(node),
        }
    }

    /// Encode a whole (annotated) plan tree.  The plan must have been
    /// executed (or estimated) so that `true_cardinality`/`true_cost` are
    /// present; missing annotations become 0.
    pub fn encode_plan(&self, plan: &PlanNode) -> EncodedPlan {
        let children: Vec<EncodedPlan> = plan.children.iter().map(|c| self.encode_plan(c)).collect();
        // Compose the signature from the already-encoded children's hashes
        // instead of re-walking each subtree once per ancestor.
        let signature = plan.signature_hash_from_children(children.iter().map(|c| c.signature));
        EncodedPlan {
            features: self.encode_node(plan),
            children,
            true_cardinality: plan.annotations.true_cardinality.unwrap_or(0.0),
            true_cost: plan.annotations.true_cost.unwrap_or(0.0),
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{execute_plan, CostModel};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate};
    use strembed::HashBitmapEncoder;

    fn extractor() -> FeatureExtractor {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 32, 64);
        FeatureExtractor::new(db, cfg, Arc::new(HashBitmapEncoder::new(32)))
    }

    fn scan_with_pred() -> PlanNode {
        PlanNode::leaf(PhysicalOp::SeqScan {
            table: "movie_companies".into(),
            predicate: Some(
                Predicate::atom("movie_companies", "note", CompareOp::Like, Operand::Str("%(co-production)%".into()))
                    .or(Predicate::atom(
                        "movie_companies",
                        "note",
                        CompareOp::Like,
                        Operand::Str("%(presents)%".into()),
                    )),
            ),
        })
    }

    #[test]
    fn operation_one_hot_is_exclusive() {
        let fx = extractor();
        let feats = fx.encode_node(&scan_with_pred());
        assert_eq!(feats.operation.iter().sum::<f32>(), 1.0);
        assert_eq!(feats.operation[0], 1.0); // SeqScan
    }

    #[test]
    fn metadata_marks_table_and_columns() {
        let fx = extractor();
        let feats = fx.encode_node(&scan_with_pred());
        let table_bits: f32 = feats.metadata[..fx.config().table_pos.len()].iter().sum();
        assert_eq!(table_bits, 1.0);
        let col_bits: f32 = feats.metadata[fx.config().table_pos.len()..].iter().sum();
        assert!(col_bits >= 1.0);
    }

    #[test]
    fn predicate_encoding_mirrors_structure() {
        let fx = extractor();
        let feats = fx.encode_node(&scan_with_pred());
        match &feats.predicate {
            PredicateEncoding::Or(l, r) => {
                assert!(matches!(**l, PredicateEncoding::Atom(_)));
                assert!(matches!(**r, PredicateEncoding::Atom(_)));
            }
            other => panic!("expected OR encoding, got {other:?}"),
        }
        assert_eq!(feats.predicate.num_atoms(), 2);
        assert_eq!(feats.predicate.dfs_atoms().len(), 2);
        for atom in feats.predicate.dfs_atoms() {
            assert_eq!(atom.len(), fx.config().atom_dim());
        }
    }

    #[test]
    fn atom_encoding_contains_string_embedding() {
        let fx = extractor();
        let atom = AtomPredicate::new("movie_companies", "note", CompareOp::Like, Operand::Str("%(presents)%".into()));
        let v = fx.encode_atom(&atom);
        let str_base = fx.config().column_pos.len() + 9 + 1;
        assert!(v[str_base..].iter().any(|&x| x != 0.0), "string slots all zero");
        // Column one-hot set exactly once.
        assert_eq!(v[..fx.config().column_pos.len()].iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn numeric_atom_sets_numeric_slot() {
        let fx = extractor();
        let atom = AtomPredicate::new("title", "production_year", CompareOp::Gt, Operand::Num(2000.0));
        let v = fx.encode_atom(&atom);
        let num_slot = fx.config().column_pos.len() + 9;
        assert!(v[num_slot] > 0.0 && v[num_slot] <= 1.0);
    }

    #[test]
    fn sample_bitmap_reflects_selectivity() {
        let fx = extractor();
        let all = fx.encode_sample_bitmap(&PlanNode::leaf(PhysicalOp::SeqScan {
            table: "movie_companies".into(),
            predicate: Some(Predicate::atom("movie_companies", "id", CompareOp::Gt, Operand::Num(0.0))),
        }));
        let none = fx.encode_sample_bitmap(&PlanNode::leaf(PhysicalOp::SeqScan {
            table: "movie_companies".into(),
            predicate: Some(Predicate::atom("movie_companies", "id", CompareOp::Lt, Operand::Num(-5.0))),
        }));
        assert!(all.iter().sum::<f32>() > 0.9 * 64.0);
        assert_eq!(none.iter().sum::<f32>(), 0.0);
    }

    #[test]
    fn sample_bitmap_disabled_is_zero() {
        let mut fx = extractor();
        fx.use_sample_bitmap = false;
        let bits = fx.encode_sample_bitmap(&scan_with_pred());
        assert_eq!(bits.iter().sum::<f32>(), 0.0);
        assert_eq!(bits.len(), 64);
    }

    #[test]
    fn encoded_plan_mirrors_tree_and_targets() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 16, 64);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(16)));

        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "title".into(),
            predicate: Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2000.0))),
        });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        execute_plan(&db, &mut join, &CostModel::default());
        let encoded = fx.encode_plan(&join);
        assert_eq!(encoded.size(), 3);
        assert_eq!(encoded.height(), 2);
        assert_eq!(encoded.signature, join.signature_hash());
        assert_eq!(encoded.children[0].signature, join.children[0].signature_hash());
        assert_ne!(encoded.signature, encoded.children[0].signature);
        assert!(encoded.true_cardinality > 0.0);
        assert!(encoded.true_cost > 0.0);
        assert_eq!(encoded.children.len(), 2);
        assert!(matches!(encoded.children[1].features.predicate, PredicateEncoding::None));
    }
}
