//! Plan-node feature extraction (Section 4.1).
//!
//! Every plan node is encoded into the four feature groups of the paper —
//! Operation, Metadata, Predicate and Sample Bitmap — and the plan tree is
//! encoded into an [`EncodedPlan`] mirroring its structure, with the true
//! cost/cardinality attached as training targets.
//!
//! Featurization is on the optimizer's critical path (every DP candidate is
//! encoded before it can be priced), so the hot paths are allocation-
//! disciplined and memoized:
//!
//! * the three fixed-width groups of a node are written into **one
//!   contiguous slab** ([`NodeFeatures`]) through the `encode_*_into`
//!   forms, instead of one heap `Vec` per group;
//! * dictionary probes go through the borrowed-key lookups of
//!   [`EncodingConfig`] — no `String` clone per lookup;
//! * the sample bitmap — a full predicate sweep over the table sample, the
//!   single most expensive encode step — is memoized per
//!   `(table, predicate signature)` in a sharded map shared by every encode
//!   path (the sweep's inputs are immutable per extractor, so entries never
//!   go stale);
//! * whole sub-plan encodings are memoized by structural signature through
//!   any [`EncodedPlanCache`] ([`FeatureExtractor::encode_plan_cached`] /
//!   [`FeatureExtractor::encode_plans`]), so DP enumeration encodes each
//!   distinct subtree exactly once.
//!
//! Every memoized path is **bit-identical** to the fresh
//! [`FeatureExtractor::encode_plan`]: encoding is deterministic in the plan
//! and the extractor, and cache keys cover the full subtree content
//! (structure *and* annotations), so a hit can only ever return exactly the
//! bits a miss would have computed.

use crate::config::EncodingConfig;
use imdb::Database;
use query::{AtomPredicate, CompareOp, Operand, PhysicalOp, PlanNode, Predicate, SigHasher};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use strembed::StringEncoder;

/// Encoded predicate tree: the min/max pooling model consumes the structure,
/// the tree-LSTM predicate variant consumes its DFS linearization.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateEncoding {
    /// No predicate on this node.
    None,
    /// An encoded atomic predicate.
    Atom(Vec<f32>),
    /// Conjunction of two sub-predicates (min pooling).
    And(Box<PredicateEncoding>, Box<PredicateEncoding>),
    /// Disjunction of two sub-predicates (max pooling).
    Or(Box<PredicateEncoding>, Box<PredicateEncoding>),
}

impl PredicateEncoding {
    /// Number of atom vectors in the encoding.
    pub fn num_atoms(&self) -> usize {
        match self {
            PredicateEncoding::None => 0,
            PredicateEncoding::Atom(_) => 1,
            PredicateEncoding::And(l, r) | PredicateEncoding::Or(l, r) => l.num_atoms() + r.num_atoms(),
        }
    }

    /// DFS linearization of the atom vectors (the one-to-one sequence mapping
    /// of Figure 4, without the explicit backtracking padding — structure is
    /// recovered from the tree itself).
    pub fn dfs_atoms(&self) -> Vec<&[f32]> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a [f32]>) {
        match self {
            PredicateEncoding::None => {}
            PredicateEncoding::Atom(v) => out.push(v),
            PredicateEncoding::And(l, r) | PredicateEncoding::Or(l, r) => {
                l.collect(out);
                r.collect(out);
            }
        }
    }
}

/// The four encoded feature groups of one plan node.
///
/// The three fixed-width groups (operation one-hot ⧺ metadata bitmap ⧺
/// sample bitmap) live in one contiguous slab — a cache-miss node costs one
/// allocation, not three — and are read back through the slice accessors.
/// The variable-shape predicate tree keeps its own structure.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFeatures {
    slab: Vec<f32>,
    meta_off: u32,
    samp_off: u32,
    pub predicate: PredicateEncoding,
}

impl NodeFeatures {
    /// Assemble from the four separately-encoded groups (test/tooling
    /// convenience; the extractor's hot path writes the slab directly).
    pub fn from_groups(
        operation: Vec<f32>,
        metadata: Vec<f32>,
        predicate: PredicateEncoding,
        sample_bitmap: Vec<f32>,
    ) -> Self {
        let meta_off = operation.len() as u32;
        let samp_off = meta_off + metadata.len() as u32;
        let mut slab = operation;
        slab.extend_from_slice(&metadata);
        slab.extend_from_slice(&sample_bitmap);
        NodeFeatures { slab, meta_off, samp_off, predicate }
    }

    /// The operation one-hot.
    pub fn operation(&self) -> &[f32] {
        &self.slab[..self.meta_off as usize]
    }

    /// The metadata bitmap (tables ⧺ columns ⧺ indexes).
    pub fn metadata(&self) -> &[f32] {
        &self.slab[self.meta_off as usize..self.samp_off as usize]
    }

    /// The sample bitmap.
    pub fn sample_bitmap(&self) -> &[f32] {
        &self.slab[self.samp_off as usize..]
    }
}

/// An encoded plan node: features, children and training targets.
/// Children are held by `Arc` so that memoized encoding
/// ([`FeatureExtractor::encode_plan_cached`]) shares cached subtrees
/// instead of deep-copying them into every parent that reuses them — a
/// `Clone` of an `EncodedPlan` copies one node's feature slab and bumps
/// the children's refcounts.  The sharing is safe because an encoded plan
/// is immutable after construction.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedPlan {
    pub features: NodeFeatures,
    pub children: Vec<Arc<EncodedPlan>>,
    /// True cardinality of this sub-plan (training target).
    pub true_cardinality: f64,
    /// True cumulative cost of this sub-plan (training target).
    pub true_cost: f64,
    /// 64-bit structural signature of the source sub-plan
    /// ([`query::PlanNode::signature_hash`]) — the key under which the
    /// serving layer memoizes this subtree's representation states.
    pub signature: u64,
}

impl EncodedPlan {
    /// Number of nodes in the encoded tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    /// Height of the encoded tree.
    pub fn height(&self) -> usize {
        1 + self.children.iter().map(|c| c.height()).max().unwrap_or(0)
    }
}

/// A pluggable cross-call cache of encoded subtrees, keyed by the memo key
/// of [`FeatureExtractor::encode_plan_cached`] (structural signature mixed
/// with the subtree's annotations).
///
/// `featurize` sits below the crate that owns the production sharded cache,
/// so the cache is injected through this trait: `estimator_core` implements
/// it for its `EncodedSubtreeCache`, and [`LocalEncodeCache`] provides the
/// in-batch dedup used by [`FeatureExtractor::encode_plans`].
pub trait EncodedPlanCache: Send + Sync {
    /// Cached encoding under `key`, if present.
    fn get(&self, key: u64) -> Option<Arc<EncodedPlan>>;
    /// Store `value` under `key`.
    fn insert(&self, key: u64, value: Arc<EncodedPlan>);
}

/// A plain mutex-guarded map cache: the in-batch dedup scope of
/// [`FeatureExtractor::encode_plans`], or a cheap private cache for tests.
#[derive(Debug, Default)]
pub struct LocalEncodeCache {
    map: Mutex<HashMap<u64, Arc<EncodedPlan>>>,
}

impl LocalEncodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached subtrees.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EncodedPlanCache for LocalEncodeCache {
    fn get(&self, key: u64) -> Option<Arc<EncodedPlan>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).get(&key).cloned()
    }

    fn insert(&self, key: u64, value: Arc<EncodedPlan>) {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).insert(key, value);
    }
}

const BITMAP_MEMO_SHARDS: usize = 16;
/// Per-shard entry cap; a shard that fills up is dropped wholesale (the memo
/// is advisory — re-deriving a bitmap is always correct, just slower).
const BITMAP_MEMO_MAX_PER_SHARD: usize = 8 * 1024;

/// Sharded memo of sample bitmaps keyed by `(table, predicate signature)`.
///
/// The bitmap sweep evaluates the scan predicate over every sampled row of
/// the table — the single most expensive encode step — and its inputs
/// (table sample, predicate) are immutable per extractor, so the memo never
/// needs invalidation: entries stay valid across refits, hot-swaps and
/// `use_sample_bitmap` toggles (the flag is checked before the memo).
#[derive(Debug)]
struct BitmapMemo {
    shards: [Mutex<HashMap<u64, Arc<Vec<f32>>>>; BITMAP_MEMO_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BitmapMemo {
    fn new() -> Self {
        BitmapMemo {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Shard selection matches the sharded caches elsewhere: middle bits of
    /// the splitmix-finalized key, so low-bit reuse cannot skew placement.
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Arc<Vec<f32>>>> {
        &self.shards[((key >> 32) as usize) & (BITMAP_MEMO_SHARDS - 1)]
    }

    fn get(&self, key: u64) -> Option<Arc<Vec<f32>>> {
        let hit = self.shard(key).lock().unwrap_or_else(|e| e.into_inner()).get(&key).cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, key: u64, bits: Arc<Vec<f32>>) {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        if shard.len() >= BITMAP_MEMO_MAX_PER_SHARD {
            shard.clear();
        }
        shard.insert(key, bits);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

thread_local! {
    /// Scratch for per-item string encodings when averaging IN-list members.
    static ATOM_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// The feature extractor: encoding configuration + string encoder + database
/// handle (for sample bitmaps).  Cloning is cheap and shares the bitmap
/// memo.
#[derive(Clone)]
pub struct FeatureExtractor {
    config: EncodingConfig,
    string_encoder: Arc<dyn StringEncoder>,
    db: Arc<Database>,
    /// When false the sample bitmap is omitted (all zeros) — the `NS`
    /// ("no sample") model variants of Table 6.
    pub use_sample_bitmap: bool,
    /// When false the bitmap sweep always re-evaluates the predicate over
    /// the sample (the pre-memo pipeline, bit-identical output) — bench
    /// baselines flip this on a clone to measure the memo's contribution.
    pub use_bitmap_memo: bool,
    bitmap_memo: Arc<BitmapMemo>,
}

impl FeatureExtractor {
    /// Create an extractor.
    pub fn new(db: Arc<Database>, config: EncodingConfig, string_encoder: Arc<dyn StringEncoder>) -> Self {
        FeatureExtractor {
            config,
            string_encoder,
            db,
            use_sample_bitmap: true,
            use_bitmap_memo: true,
            bitmap_memo: Arc::new(BitmapMemo::new()),
        }
    }

    /// The encoding configuration.
    pub fn config(&self) -> &EncodingConfig {
        &self.config
    }

    /// `(hits, misses)` of the sample-bitmap memo since creation (or the
    /// last [`FeatureExtractor::clear_bitmap_memo`]).
    pub fn bitmap_memo_stats(&self) -> (u64, u64) {
        self.bitmap_memo.stats()
    }

    /// Hit rate of the sample-bitmap memo (0 when never probed).
    pub fn bitmap_memo_hit_rate(&self) -> f64 {
        let (hits, misses) = self.bitmap_memo.stats();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Drop every memoized bitmap and reset the counters (bench baselines;
    /// never required for correctness — entries cannot go stale).
    pub fn clear_bitmap_memo(&self) {
        self.bitmap_memo.clear();
    }

    /// Encode a raw string operand through the extractor's string encoder.
    ///
    /// Exposed so model checkpoints can fingerprint the encoder: two
    /// extractors with identical one-hot dictionaries but different string
    /// encoders (different embedding dictionaries, different rules) produce
    /// different encodings for the same probe strings.
    pub fn encode_string_operand(&self, s: &str, op: CompareOp) -> Vec<f32> {
        self.string_encoder.encode(s, op)
    }

    /// Encode an atomic predicate into
    /// `column one-hot ⧺ operator one-hot ⧺ numeric slot ⧺ string encoding`.
    pub fn encode_atom(&self, atom: &AtomPredicate) -> Vec<f32> {
        let mut v = vec![0.0f32; self.config.atom_dim()];
        self.encode_atom_into(atom, &mut v);
        v
    }

    /// Write an atomic predicate's encoding into a **zeroed** slice of
    /// length [`EncodingConfig::atom_dim`].  Bit-identical to
    /// [`FeatureExtractor::encode_atom`] without its allocation.
    pub fn encode_atom_into(&self, atom: &AtomPredicate, out: &mut [f32]) {
        let cfg = &self.config;
        debug_assert_eq!(out.len(), cfg.atom_dim());
        if let Some(pos) = cfg.column_position(&atom.table, &atom.column) {
            out[pos] = 1.0;
        }
        let op_base = cfg.column_pos.len();
        out[op_base + atom.op.index()] = 1.0;
        let operand_base = op_base + CompareOp::ALL.len();
        match &atom.operand {
            Operand::Num(x) => {
                out[operand_base] = cfg.normalize_numeric(&atom.table, &atom.column, *x) as f32;
            }
            Operand::Str(s) => {
                let dst = &mut out[operand_base + 1..operand_base + 1 + cfg.string_dim];
                self.string_encoder.encode_into(s, atom.op, dst);
            }
            Operand::StrList(items) => {
                // IN lists: average the encodings of the list members.
                if !items.is_empty() {
                    let dst = &mut out[operand_base + 1..operand_base + 1 + cfg.string_dim];
                    ATOM_SCRATCH.with(|scratch| {
                        let mut scratch = scratch.borrow_mut();
                        for s in items {
                            scratch.clear();
                            scratch.resize(cfg.string_dim, 0.0);
                            self.string_encoder.encode_into(s, atom.op, &mut scratch);
                            for (d, x) in dst.iter_mut().zip(scratch.iter()) {
                                *d += x;
                            }
                        }
                    });
                    for d in dst.iter_mut() {
                        *d /= items.len() as f32;
                    }
                }
            }
        }
    }

    /// Encode a (possibly compound) predicate into its tree encoding.
    pub fn encode_predicate(&self, predicate: Option<&Predicate>) -> PredicateEncoding {
        match predicate {
            None => PredicateEncoding::None,
            Some(Predicate::Atom(a)) => PredicateEncoding::Atom(self.encode_atom(a)),
            Some(Predicate::And(l, r)) => PredicateEncoding::And(
                Box::new(self.encode_predicate(Some(l))),
                Box::new(self.encode_predicate(Some(r))),
            ),
            Some(Predicate::Or(l, r)) => PredicateEncoding::Or(
                Box::new(self.encode_predicate(Some(l))),
                Box::new(self.encode_predicate(Some(r))),
            ),
        }
    }

    /// Encode the metadata bitmap of a node (tables ⧺ columns ⧺ indexes).
    pub fn encode_metadata(&self, node: &PlanNode) -> Vec<f32> {
        let mut v = vec![0.0f32; self.config.metadata_dim()];
        self.encode_metadata_into(node, &mut v);
        v
    }

    /// Write a node's metadata bitmap into a **zeroed** slice of length
    /// [`EncodingConfig::metadata_dim`].  Bit-identical to
    /// [`FeatureExtractor::encode_metadata`] without its allocation; every
    /// dictionary probe uses the borrowed-key lookups.
    pub fn encode_metadata_into(&self, node: &PlanNode, out: &mut [f32]) {
        let cfg = &self.config;
        debug_assert_eq!(out.len(), cfg.metadata_dim());
        let col_base = cfg.table_pos.len();
        let idx_base = col_base + cfg.column_pos.len();

        let mark_column = |table: &str, column: &str, out: &mut [f32]| {
            if let Some(p) = cfg.column_position(table, column) {
                out[col_base + p] = 1.0;
            }
            if let Some(p) = cfg.index_position(table, column) {
                out[idx_base + p] = 1.0;
            }
        };

        match &node.op {
            PhysicalOp::SeqScan { table, predicate } | PhysicalOp::IndexScan { table, predicate, .. } => {
                if let Some(&p) = cfg.table_pos.get(table) {
                    out[p] = 1.0;
                }
                if let PhysicalOp::IndexScan { index_column, .. } = &node.op {
                    mark_column(table, index_column, out);
                }
                if let Some(pred) = predicate {
                    pred.for_each_atom(&mut |atom| mark_column(&atom.table, &atom.column, out));
                }
            }
            PhysicalOp::HashJoin { condition }
            | PhysicalOp::MergeJoin { condition }
            | PhysicalOp::NestedLoopJoin { condition } => {
                for (t, c) in
                    [(&condition.left_table, &condition.left_column), (&condition.right_table, &condition.right_column)]
                {
                    if let Some(&p) = cfg.table_pos.get(t.as_str()) {
                        out[p] = 1.0;
                    }
                    mark_column(t, c, out);
                }
            }
            PhysicalOp::Sort { table, columns } => {
                if let Some(&p) = cfg.table_pos.get(table) {
                    out[p] = 1.0;
                }
                for c in columns {
                    mark_column(table, c, out);
                }
            }
            PhysicalOp::Aggregate { .. } => {}
        }
    }

    /// Encode the sample bitmap of a node: bit `i` is 1 when sampled row `i`
    /// of the scanned table satisfies the node's predicate.
    pub fn encode_sample_bitmap(&self, node: &PlanNode) -> Vec<f32> {
        let mut bits = vec![0.0; self.config.sample_dim()];
        self.encode_sample_bitmap_into(node, &mut bits);
        bits
    }

    /// Write a node's sample bitmap into a **zeroed** slice of length
    /// [`EncodingConfig::sample_dim`].  Bit-identical to
    /// [`FeatureExtractor::encode_sample_bitmap`] without its allocations;
    /// the predicate sweep itself is memoized per
    /// `(table, predicate signature)`, so across an enumeration every
    /// distinct scan predicate is evaluated against the sample exactly once.
    pub fn encode_sample_bitmap_into(&self, node: &PlanNode, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.config.sample_dim());
        if !self.use_sample_bitmap {
            return;
        }
        let (table, predicate) = match &node.op {
            PhysicalOp::SeqScan { table, predicate } | PhysicalOp::IndexScan { table, predicate, .. } => {
                (table.as_str(), predicate.as_ref())
            }
            _ => return,
        };
        let Some(pred) = predicate else { return };
        let (Some(sample), Some(tab)) = (self.db.sample(table), self.db.table(table)) else {
            return;
        };
        let key = if self.use_bitmap_memo {
            let mut h = SigHasher::new();
            h.write_str(table);
            pred.hash_signature(&mut h);
            let key = h.finish();
            if let Some(bits) = self.bitmap_memo.get(key) {
                out[..bits.len()].copy_from_slice(&bits);
                return;
            }
            Some(key)
        } else {
            None
        };
        for (i, &row) in sample.rows().iter().enumerate() {
            if i >= out.len() {
                break;
            }
            if pred.matches_row(tab, row) {
                out[i] = 1.0;
            }
        }
        if let Some(key) = key {
            let width = sample.width().min(out.len());
            self.bitmap_memo.insert(key, Arc::new(out[..width].to_vec()));
        }
    }

    /// Encode one node's four feature groups: the three fixed-width groups
    /// go into one contiguous slab, the predicate tree keeps its shape.
    pub fn encode_node(&self, node: &PlanNode) -> NodeFeatures {
        let cfg = &self.config;
        let meta_off = cfg.operation_dim();
        let samp_off = meta_off + cfg.metadata_dim();
        let mut slab = vec![0.0f32; samp_off + cfg.sample_dim()];
        slab[node.op.one_hot_index()] = 1.0;
        self.encode_metadata_into(node, &mut slab[meta_off..samp_off]);
        self.encode_sample_bitmap_into(node, &mut slab[samp_off..]);
        NodeFeatures {
            slab,
            meta_off: meta_off as u32,
            samp_off: samp_off as u32,
            predicate: self.encode_predicate(node.op.predicate()),
        }
    }

    /// Encode a whole (annotated) plan tree.  The plan must have been
    /// executed (or estimated) so that `true_cardinality`/`true_cost` are
    /// present; missing annotations become 0.
    pub fn encode_plan(&self, plan: &PlanNode) -> EncodedPlan {
        let children: Vec<Arc<EncodedPlan>> = plan.children.iter().map(|c| Arc::new(self.encode_plan(c))).collect();
        // Compose the signature from the already-encoded children's hashes
        // instead of re-walking each subtree once per ancestor.
        let signature = plan.signature_hash_from_children(children.iter().map(|c| c.signature));
        EncodedPlan {
            features: self.encode_node(plan),
            children,
            true_cardinality: plan.annotations.true_cardinality.unwrap_or(0.0),
            true_cost: plan.annotations.true_cost.unwrap_or(0.0),
            signature,
        }
    }

    /// Memoized [`FeatureExtractor::encode_plan`]: each distinct subtree is
    /// encoded at most once per cache, and a hit returns the shared
    /// `Arc<EncodedPlan>` without touching the plan's nodes again.
    ///
    /// The memo key mixes the structural signature with the subtree's
    /// annotations (targets are part of an `EncodedPlan`), so structurally
    /// identical plans with different training targets never alias — the
    /// result is bit-identical to a fresh encode for *any* plan, annotated
    /// or not.
    pub fn encode_plan_cached(&self, plan: &PlanNode, cache: &dyn EncodedPlanCache) -> Arc<EncodedPlan> {
        let mut stack = Vec::new();
        self.encode_cached_rec(plan, cache, &mut stack);
        stack.pop().expect("encode_cached_rec pushes exactly one root entry").0
    }

    /// Encode a batch with in-batch signature dedup: subtrees shared across
    /// (or repeated within) the batch are encoded once.  Bit-identical to
    /// encoding each plan with [`FeatureExtractor::encode_plan`].
    pub fn encode_plans(&self, plans: &[PlanNode]) -> Vec<EncodedPlan> {
        let cache = LocalEncodeCache::new();
        plans.iter().map(|p| EncodedPlan::clone(&self.encode_plan_cached(p, &cache))).collect()
    }

    /// [`FeatureExtractor::encode_plans`] against a caller-owned cache (the
    /// serving layer passes its cross-call `EncodedSubtreeCache` here), so
    /// dedup extends across batches, sessions and rounds.
    pub fn encode_plans_cached(&self, plans: &[PlanNode], cache: &dyn EncodedPlanCache) -> Vec<Arc<EncodedPlan>> {
        let mut stack = Vec::new();
        plans
            .iter()
            .map(|p| {
                self.encode_cached_rec(p, cache, &mut stack);
                stack.pop().expect("encode_cached_rec pushes exactly one root entry").0
            })
            .collect()
    }

    /// Pushes the encoded subtree and its memo key onto `stack` (exactly one
    /// entry per call).  The stack is threaded through the recursion instead
    /// of collecting a per-node `Vec` of children, so a fully warm pass —
    /// every node a cache hit — performs no heap allocation at all: just
    /// signature hashing, one probe per node and `Arc` refcount traffic.
    fn encode_cached_rec(
        &self,
        plan: &PlanNode,
        cache: &dyn EncodedPlanCache,
        stack: &mut Vec<(Arc<EncodedPlan>, u64)>,
    ) {
        let base = stack.len();
        for c in &plan.children {
            self.encode_cached_rec(c, cache, stack);
        }
        let signature = plan.signature_hash_from_children(stack[base..].iter().map(|(c, _)| c.signature));
        // The memo key: structural signature ⧺ this node's annotations ⧺
        // the children's memo keys.  Child keys cover the children's own
        // annotations recursively, so two trees share a key only when their
        // entire content — and therefore their entire encoding — agrees.
        let mut h = SigHasher::new();
        h.write_u64(signature);
        match plan.annotations.true_cardinality {
            Some(v) => {
                h.write_u8(1);
                h.write_f64(v);
            }
            None => h.write_u8(0),
        }
        match plan.annotations.true_cost {
            Some(v) => {
                h.write_u8(1);
                h.write_f64(v);
            }
            None => h.write_u8(0),
        }
        for (_, child_key) in &stack[base..] {
            h.write_u64(*child_key);
        }
        let key = h.finish();
        if let Some(hit) = cache.get(key) {
            stack.truncate(base);
            stack.push((hit, key));
            return;
        }
        let encoded = Arc::new(EncodedPlan {
            features: self.encode_node(plan),
            children: stack.drain(base..).map(|(c, _)| c).collect(),
            true_cardinality: plan.annotations.true_cardinality.unwrap_or(0.0),
            true_cost: plan.annotations.true_cost.unwrap_or(0.0),
            signature,
        });
        cache.insert(key, Arc::clone(&encoded));
        stack.push((encoded, key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{execute_plan, CostModel};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate};
    use strembed::HashBitmapEncoder;

    fn extractor() -> FeatureExtractor {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 32, 64);
        FeatureExtractor::new(db, cfg, Arc::new(HashBitmapEncoder::new(32)))
    }

    fn scan_with_pred() -> PlanNode {
        PlanNode::leaf(PhysicalOp::SeqScan {
            table: "movie_companies".into(),
            predicate: Some(
                Predicate::atom("movie_companies", "note", CompareOp::Like, Operand::Str("%(co-production)%".into()))
                    .or(Predicate::atom(
                        "movie_companies",
                        "note",
                        CompareOp::Like,
                        Operand::Str("%(presents)%".into()),
                    )),
            ),
        })
    }

    #[test]
    fn operation_one_hot_is_exclusive() {
        let fx = extractor();
        let feats = fx.encode_node(&scan_with_pred());
        assert_eq!(feats.operation().iter().sum::<f32>(), 1.0);
        assert_eq!(feats.operation()[0], 1.0); // SeqScan
    }

    #[test]
    fn metadata_marks_table_and_columns() {
        let fx = extractor();
        let feats = fx.encode_node(&scan_with_pred());
        let table_bits: f32 = feats.metadata()[..fx.config().table_pos.len()].iter().sum();
        assert_eq!(table_bits, 1.0);
        let col_bits: f32 = feats.metadata()[fx.config().table_pos.len()..].iter().sum();
        assert!(col_bits >= 1.0);
    }

    #[test]
    fn node_slab_groups_have_configured_widths() {
        let fx = extractor();
        let feats = fx.encode_node(&scan_with_pred());
        assert_eq!(feats.operation().len(), fx.config().operation_dim());
        assert_eq!(feats.metadata().len(), fx.config().metadata_dim());
        assert_eq!(feats.sample_bitmap().len(), fx.config().sample_dim());
        // The groups are one contiguous slab; from_groups round-trips them.
        let rebuilt = NodeFeatures::from_groups(
            feats.operation().to_vec(),
            feats.metadata().to_vec(),
            feats.predicate.clone(),
            feats.sample_bitmap().to_vec(),
        );
        assert_eq!(rebuilt, feats);
    }

    #[test]
    fn predicate_encoding_mirrors_structure() {
        let fx = extractor();
        let feats = fx.encode_node(&scan_with_pred());
        match &feats.predicate {
            PredicateEncoding::Or(l, r) => {
                assert!(matches!(**l, PredicateEncoding::Atom(_)));
                assert!(matches!(**r, PredicateEncoding::Atom(_)));
            }
            other => panic!("expected OR encoding, got {other:?}"),
        }
        assert_eq!(feats.predicate.num_atoms(), 2);
        assert_eq!(feats.predicate.dfs_atoms().len(), 2);
        for atom in feats.predicate.dfs_atoms() {
            assert_eq!(atom.len(), fx.config().atom_dim());
        }
    }

    #[test]
    fn atom_encoding_contains_string_embedding() {
        let fx = extractor();
        let atom = AtomPredicate::new("movie_companies", "note", CompareOp::Like, Operand::Str("%(presents)%".into()));
        let v = fx.encode_atom(&atom);
        let str_base = fx.config().column_pos.len() + 9 + 1;
        assert!(v[str_base..].iter().any(|&x| x != 0.0), "string slots all zero");
        // Column one-hot set exactly once.
        assert_eq!(v[..fx.config().column_pos.len()].iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn in_list_atom_averages_member_encodings() {
        let fx = extractor();
        let items = vec!["(presents)".to_string(), "(co-production)".to_string()];
        let listed = fx.encode_atom(&AtomPredicate::new(
            "movie_companies",
            "note",
            CompareOp::In,
            Operand::StrList(items.clone()),
        ));
        let singles: Vec<Vec<f32>> = items
            .iter()
            .map(|s| {
                fx.encode_atom(&AtomPredicate::new("movie_companies", "note", CompareOp::In, Operand::Str(s.clone())))
            })
            .collect();
        let str_base = fx.config().column_pos.len() + 9 + 1;
        for i in str_base..fx.config().atom_dim() {
            let mean = (singles[0][i] + singles[1][i]) / 2.0;
            assert_eq!(listed[i].to_bits(), mean.to_bits(), "slot {i} is not the member average");
        }
    }

    #[test]
    fn numeric_atom_sets_numeric_slot() {
        let fx = extractor();
        let atom = AtomPredicate::new("title", "production_year", CompareOp::Gt, Operand::Num(2000.0));
        let v = fx.encode_atom(&atom);
        let num_slot = fx.config().column_pos.len() + 9;
        assert!(v[num_slot] > 0.0 && v[num_slot] <= 1.0);
    }

    #[test]
    fn sample_bitmap_reflects_selectivity() {
        let fx = extractor();
        let all = fx.encode_sample_bitmap(&PlanNode::leaf(PhysicalOp::SeqScan {
            table: "movie_companies".into(),
            predicate: Some(Predicate::atom("movie_companies", "id", CompareOp::Gt, Operand::Num(0.0))),
        }));
        let none = fx.encode_sample_bitmap(&PlanNode::leaf(PhysicalOp::SeqScan {
            table: "movie_companies".into(),
            predicate: Some(Predicate::atom("movie_companies", "id", CompareOp::Lt, Operand::Num(-5.0))),
        }));
        assert!(all.iter().sum::<f32>() > 0.9 * 64.0);
        assert_eq!(none.iter().sum::<f32>(), 0.0);
    }

    #[test]
    fn sample_bitmap_disabled_is_zero() {
        let mut fx = extractor();
        fx.use_sample_bitmap = false;
        let bits = fx.encode_sample_bitmap(&scan_with_pred());
        assert_eq!(bits.iter().sum::<f32>(), 0.0);
        assert_eq!(bits.len(), 64);
    }

    #[test]
    fn bitmap_memo_hits_on_repeated_predicates_with_identical_bits() {
        let fx = extractor();
        let node = scan_with_pred();
        let first = fx.encode_sample_bitmap(&node);
        let (h0, m0) = fx.bitmap_memo_stats();
        assert_eq!((h0, m0), (0, 1), "first sweep must miss the memo");
        let second = fx.encode_sample_bitmap(&node);
        assert_eq!(fx.bitmap_memo_stats(), (1, 1), "second sweep must hit");
        assert_eq!(
            first.iter().map(|b| b.to_bits()).collect::<Vec<_>>(),
            second.iter().map(|b| b.to_bits()).collect::<Vec<_>>()
        );
        // Same predicate behind a different scan operator shares the entry.
        let index_scan = PlanNode::leaf(PhysicalOp::IndexScan {
            table: "movie_companies".into(),
            index_column: "id".into(),
            predicate: match &node.op {
                PhysicalOp::SeqScan { predicate, .. } => predicate.clone(),
                _ => unreachable!(),
            },
        });
        let third = fx.encode_sample_bitmap(&index_scan);
        assert_eq!(fx.bitmap_memo_stats(), (2, 1));
        assert_eq!(first, third);
        fx.clear_bitmap_memo();
        assert_eq!(fx.bitmap_memo_stats(), (0, 0));
    }

    fn executed_join(db: &Arc<Database>, year: f64) -> PlanNode {
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "title".into(),
            predicate: Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(year))),
        });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        execute_plan(db, &mut join, &CostModel::default());
        join
    }

    #[test]
    fn encoded_plan_mirrors_tree_and_targets() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 16, 64);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(16)));
        let join = executed_join(&db, 2000.0);
        let encoded = fx.encode_plan(&join);
        assert_eq!(encoded.size(), 3);
        assert_eq!(encoded.height(), 2);
        assert_eq!(encoded.signature, join.signature_hash());
        assert_eq!(encoded.children[0].signature, join.children[0].signature_hash());
        assert_ne!(encoded.signature, encoded.children[0].signature);
        assert!(encoded.true_cardinality > 0.0);
        assert!(encoded.true_cost > 0.0);
        assert_eq!(encoded.children.len(), 2);
        assert!(matches!(encoded.children[1].features.predicate, PredicateEncoding::None));
    }

    #[test]
    fn encode_plans_dedups_and_matches_fresh_encoding() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 16, 64);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(16)));
        // Two identical plans plus one sharing only the scan subtrees.
        let plans = vec![executed_join(&db, 2000.0), executed_join(&db, 2000.0), executed_join(&db, 1980.0)];
        let fresh: Vec<EncodedPlan> = plans.iter().map(|p| fx.encode_plan(p)).collect();
        let batched = fx.encode_plans(&plans);
        assert_eq!(batched, fresh, "batched memoized encode must equal fresh per-plan encode");

        // Through an explicit cache the two identical roots share one Arc.
        let cache = LocalEncodeCache::new();
        let arcs = fx.encode_plans_cached(&plans, &cache);
        assert!(Arc::ptr_eq(&arcs[0], &arcs[1]), "identical plans must dedup to one cached encoding");
        assert!(!Arc::ptr_eq(&arcs[0], &arcs[2]));
        // 3 distinct subtrees per plan; the second is fully shared, the
        // third shares only the un-annotated predicate-free mc scan (its
        // annotated title scan differs by year, and executed annotations
        // differ per plan).
        assert!(cache.len() < 9, "cache holds fewer entries than total nodes ({})", cache.len());
        assert_eq!(EncodedPlan::clone(&arcs[2]), fresh[2]);
    }

    #[test]
    fn annotated_twins_never_alias_in_the_encode_cache() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 16, 64);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(16)));
        let executed = executed_join(&db, 2000.0);
        fn clear_annotations(node: &mut PlanNode) {
            node.annotations = Default::default();
            for c in &mut node.children {
                clear_annotations(c);
            }
        }
        let mut bare = executed.clone();
        clear_annotations(&mut bare);
        assert_eq!(executed.signature_hash(), bare.signature_hash(), "twins must collide structurally");
        let cache = LocalEncodeCache::new();
        let a = fx.encode_plan_cached(&executed, &cache);
        let b = fx.encode_plan_cached(&bare, &cache);
        assert!(a.true_cost > 0.0);
        assert_eq!(b.true_cost, 0.0, "un-annotated twin must not inherit cached targets");
        assert_eq!(EncodedPlan::clone(&b), fx.encode_plan(&bare));
    }
}
