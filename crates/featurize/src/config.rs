//! Encoding configuration: the one-hot dictionaries derived from the schema.
//!
//! The widths of every feature vector are fixed up-front from the database
//! schema (tables, columns, indexes), the comparison-operator set and the
//! chosen string-encoder width, so that plans of any shape encode into
//! tensors of consistent dimensions (Figure 3 of the paper).

use imdb::Database;
use query::CompareOp;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Borrowed view of a `(table, column)` dictionary key, so the hot encode
/// paths can probe the `HashMap<(String, String), _>` dictionaries with two
/// `&str`s instead of cloning both strings per lookup.
///
/// The `Hash` impl must mirror the derived tuple hash of
/// `(String, String)` exactly (each `String` hashes as its `str`), so a
/// probe through the trait object finds entries inserted under owned keys.
trait PairKey {
    fn first(&self) -> &str;
    fn second(&self) -> &str;
}

impl PairKey for (String, String) {
    fn first(&self) -> &str {
        &self.0
    }
    fn second(&self) -> &str {
        &self.1
    }
}

impl PairKey for (&str, &str) {
    fn first(&self) -> &str {
        self.0
    }
    fn second(&self) -> &str {
        self.1
    }
}

impl Hash for dyn PairKey + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.first().hash(state);
        self.second().hash(state);
    }
}

impl PartialEq for dyn PairKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.first() == other.first() && self.second() == other.second()
    }
}

impl Eq for dyn PairKey + '_ {}

impl<'a> Borrow<dyn PairKey + 'a> for (String, String) {
    fn borrow(&self) -> &(dyn PairKey + 'a) {
        self
    }
}

/// Fixed encoding dimensions and one-hot position dictionaries.
#[derive(Debug, Clone)]
pub struct EncodingConfig {
    /// Table name → one-hot position.
    pub table_pos: HashMap<String, usize>,
    /// (table, column) → one-hot position.
    pub column_pos: HashMap<(String, String), usize>,
    /// (table, column) of indexed columns → one-hot position.
    pub index_pos: HashMap<(String, String), usize>,
    /// min/max of each numeric column, used to normalize numeric operands.
    pub numeric_range: HashMap<(String, String), (f64, f64)>,
    /// Width of the string-operand encoding.
    pub string_dim: usize,
    /// Width of the sample bitmap.
    pub sample_bits: usize,
}

impl EncodingConfig {
    /// Derive the configuration from a database.
    pub fn from_database(db: &Database, string_dim: usize, sample_bits: usize) -> Self {
        let schema = db.schema();
        let mut table_pos = HashMap::new();
        let mut column_pos = HashMap::new();
        let mut index_pos = HashMap::new();
        let mut numeric_range = HashMap::new();
        for (ti, t) in schema.tables.iter().enumerate() {
            table_pos.insert(t.name.clone(), ti);
            for c in &t.columns {
                let pos = column_pos.len();
                column_pos.insert((t.name.clone(), c.name.clone()), pos);
                if c.indexed {
                    let ipos = index_pos.len();
                    index_pos.insert((t.name.clone(), c.name.clone()), ipos);
                }
                if c.ty == imdb::ColumnType::Int {
                    if let Some(table) = db.table(&t.name) {
                        if let Some(imdb::Column::Int(values)) = table.column_by_name(&c.name) {
                            let min = values.iter().copied().min().unwrap_or(0) as f64;
                            let max = values.iter().copied().max().unwrap_or(1) as f64;
                            numeric_range.insert((t.name.clone(), c.name.clone()), (min, max.max(min + 1.0)));
                        }
                    }
                }
            }
        }
        EncodingConfig { table_pos, column_pos, index_pos, numeric_range, string_dim, sample_bits }
    }

    /// Width of the operation one-hot.
    pub fn operation_dim(&self) -> usize {
        query::PhysicalOp::NUM_OPS
    }

    /// Width of the metadata vector (tables ⧺ columns ⧺ indexes bitmaps).
    pub fn metadata_dim(&self) -> usize {
        self.table_pos.len() + self.column_pos.len() + self.index_pos.len()
    }

    /// Width of one encoded atomic predicate:
    /// column one-hot ⧺ operator one-hot ⧺ numeric slot ⧺ string encoding.
    pub fn atom_dim(&self) -> usize {
        self.column_pos.len() + CompareOp::ALL.len() + 1 + self.string_dim
    }

    /// Width of the sample bitmap.
    pub fn sample_dim(&self) -> usize {
        self.sample_bits
    }

    /// One-hot position of `(table, column)`, probed without allocating.
    pub fn column_position(&self, table: &str, column: &str) -> Option<usize> {
        self.column_pos.get(&(table, column) as &dyn PairKey).copied()
    }

    /// One-hot position of the index on `(table, column)`, probed without
    /// allocating.
    pub fn index_position(&self, table: &str, column: &str) -> Option<usize> {
        self.index_pos.get(&(table, column) as &dyn PairKey).copied()
    }

    /// Normalize a numeric operand into `[0, 1]` using the column's range.
    pub fn normalize_numeric(&self, table: &str, column: &str, value: f64) -> f64 {
        match self.numeric_range.get(&(table, column) as &dyn PairKey) {
            Some((min, max)) => ((value - min) / (max - min)).clamp(0.0, 1.0),
            None => 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};

    #[test]
    fn dimensions_are_consistent() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let cfg = EncodingConfig::from_database(&db, 16, 64);
        assert_eq!(cfg.operation_dim(), 7);
        assert_eq!(cfg.table_pos.len(), db.schema().tables.len());
        assert_eq!(cfg.column_pos.len(), db.schema().all_columns().len());
        assert_eq!(cfg.metadata_dim(), cfg.table_pos.len() + cfg.column_pos.len() + cfg.index_pos.len());
        assert_eq!(cfg.atom_dim(), cfg.column_pos.len() + 9 + 1 + 16);
        assert_eq!(cfg.sample_dim(), 64);
    }

    #[test]
    fn numeric_normalization_clamps() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let lo = cfg.normalize_numeric("title", "production_year", 1800.0);
        let hi = cfg.normalize_numeric("title", "production_year", 2500.0);
        let mid = cfg.normalize_numeric("title", "production_year", 1985.0);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
        assert!(mid > 0.0 && mid < 1.0);
        assert_eq!(cfg.normalize_numeric("title", "unknown", 5.0), 0.5);
    }

    #[test]
    fn borrowed_key_probes_match_owned_lookups() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        for ((table, column), &pos) in &cfg.column_pos {
            assert_eq!(cfg.column_position(table, column), Some(pos));
        }
        for ((table, column), &pos) in &cfg.index_pos {
            assert_eq!(cfg.index_position(table, column), Some(pos));
        }
        assert_eq!(cfg.column_position("title", "no_such_column"), None);
        assert_eq!(cfg.index_position("no_such_table", "id"), None);
    }

    #[test]
    fn one_hot_positions_are_unique() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let mut positions: Vec<usize> = cfg.column_pos.values().copied().collect();
        positions.sort_unstable();
        positions.dedup();
        assert_eq!(positions.len(), cfg.column_pos.len());
    }
}
