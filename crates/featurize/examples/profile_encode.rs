//! Component-level profile of the plan featurization pipeline (metadata
//! one-hots, predicate tree, sample-bitmap sweep with and without the
//! bitmap memo, whole-node slab encode, fresh vs. signature-memoized plan
//! encode over a DP-enumeration workload) — the dev tool behind the
//! "encode pipeline" numbers in `docs/perf.md`.  Not a regression gate;
//! the end-to-end floors live in the `bench` crate's check mode.
//!
//! `cargo run -p featurize --release --example profile_encode`

use featurize::{EncodedPlan, EncodingConfig, FeatureExtractor, LocalEncodeCache};
use imdb::{generate_imdb, GeneratorConfig};
use query::PlanNode;
use std::sync::Arc;
use std::time::Instant;
use strembed::HashBitmapEncoder;
use workloads::{generate_enumeration_workload, EnumerationConfig};

fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
    let cfg = EncodingConfig::from_database(&db, 16, 64);
    let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(16)));

    let workload = generate_enumeration_workload(
        &db,
        EnumerationConfig { num_queries: 8, min_joins: 2, max_joins: 4, max_candidates_per_query: 80, seed: 17 },
    );
    let plans: Vec<PlanNode> = workload.iter().flat_map(|s| s.candidates.iter().cloned()).collect();
    let total_nodes: usize = plans.iter().map(|p| p.size()).sum();
    let distinct: usize = workload.iter().map(|s| s.distinct_subtrees()).sum();
    println!("enumeration stream: {} plans, {} nodes, {} distinct subtrees", plans.len(), total_nodes, distinct);

    // Pick a predicate-bearing scan node for the component rows.
    let node = plans
        .iter()
        .flat_map(|p| p.nodes_preorder())
        .find(|n| n.op.predicate().is_some())
        .expect("workload has a filtered scan");
    let c = fx.config();
    let mut meta_buf = vec![0.0f32; c.metadata_dim()];
    let mut samp_buf = vec![0.0f32; c.sample_dim()];

    let meta_ns = time_ns(50_000, || fx.encode_metadata_into(node, &mut meta_buf));
    let pred_ns = time_ns(50_000, || {
        std::hint::black_box(fx.encode_predicate(node.op.predicate()));
    });
    fx.clear_bitmap_memo();
    let bitmap_cold_ns = time_ns(2_000, || {
        fx.clear_bitmap_memo();
        fx.encode_sample_bitmap_into(node, &mut samp_buf);
    });
    let bitmap_warm_ns = time_ns(50_000, || fx.encode_sample_bitmap_into(node, &mut samp_buf));
    let node_ns = time_ns(20_000, || {
        std::hint::black_box(fx.encode_node(node));
    });
    println!(
        "node components: metadata {meta_ns:>8.0} ns   predicate {pred_ns:>8.0} ns   \
         bitmap cold {bitmap_cold_ns:>8.0} ns / warm {bitmap_warm_ns:>8.0} ns ({:.1}x)   \
         full node {node_ns:>8.0} ns",
        bitmap_cold_ns / bitmap_warm_ns.max(1.0)
    );

    // Whole-stream throughput.  "fresh" is the pre-memo pipeline (bitmap
    // memo disabled on a clone — bit-identical output, no reuse); "cold"
    // starts an empty encode cache per pass (intra-stream dedup only);
    // "warm" is the serving steady state, the stream re-encoded against an
    // already-populated cache, as a DP enumerator's rounds would.
    let mut fresh_fx = fx.clone();
    fresh_fx.use_bitmap_memo = false;
    let fresh_ns = time_ns(5, || {
        for p in &plans {
            std::hint::black_box(fresh_fx.encode_plan(p));
        }
    });
    let cold_ns = time_ns(5, || {
        let cache = LocalEncodeCache::new();
        std::hint::black_box(fx.encode_plans_cached(&plans, &cache));
    });
    let warm_cache = LocalEncodeCache::new();
    fx.encode_plans_cached(&plans, &warm_cache);
    let warm_ns = time_ns(20, || {
        std::hint::black_box(fx.encode_plans_cached(&plans, &warm_cache));
    });
    fx.clear_bitmap_memo();
    let _pass: Vec<EncodedPlan> = plans.iter().map(|p| fx.encode_plan(p)).collect();
    let (hits, misses) = fx.bitmap_memo_stats();
    let per_plan = 1e9 / (fresh_ns / plans.len() as f64);
    let per_plan_warm = 1e9 / (warm_ns / plans.len() as f64);
    println!(
        "stream encode: fresh {:>7.2} ms ({per_plan:>8.0} plans/s)   memoized cold {:>7.2} ms \
         ({:.2}x)   memoized warm {:>7.2} ms ({per_plan_warm:>8.0} plans/s, {:.2}x)",
        fresh_ns / 1e6,
        cold_ns / 1e6,
        fresh_ns / cold_ns.max(1.0),
        warm_ns / 1e6,
        fresh_ns / warm_ns.max(1.0),
    );
    println!(
        "bitmap memo over one fresh stream pass: {hits} hits / {misses} misses ({:.1}% hit rate)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
}
