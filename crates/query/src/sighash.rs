//! Allocation-free 64-bit structural signatures.
//!
//! [`PlanNode::signature`](crate::PlanNode::signature) builds a `String` per
//! call, which is fine for debugging but far too slow for the optimizer loop
//! where every sub-plan of every candidate is looked up in the representation
//! memory pool and the subtree-state cache.  [`SigHasher`] streams the same
//! structural content (operator, tables, columns, predicate tree, children)
//! through an FNV-1a accumulator with a splitmix64 finalizer, producing a
//! `u64` key with no heap traffic.
//!
//! # Collision posture
//!
//! Signatures are 64-bit *hashes*, not canonical encodings, so distinct
//! sub-plans collide with birthday probability `n^2 / 2^65`: for one million
//! distinct sub-plans that is ~3e-8 — far below any operational concern, and
//! a collision's only effect is one sub-plan briefly borrowing another's
//! cached estimate (the caches are advisory, never load-bearing for
//! correctness of training).  The splitmix64 finalizer restores the
//! whole-word avalanche plain FNV-1a lacks, so every bit range of the key —
//! the sharded caches select shards from the middle bits — is well mixed.
//! `signature_collision_free_over_1e5_subplans` (in `plan.rs`) pins the
//! posture in practice: ≥1e5 structurally distinct generated sub-plans must
//! produce pairwise-distinct signatures.

/// Streaming FNV-1a hasher with a splitmix64 finalizer.
#[derive(Debug, Clone, Copy)]
pub struct SigHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl SigHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        SigHasher(FNV_OFFSET)
    }

    /// Feed raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Feed a single tag byte (enum discriminants, structural markers).
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feed a `u64` (e.g. a child sub-signature).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feed an `f64` by bit pattern (`-0.0` and `0.0` hash differently; the
    /// generators never emit `-0.0`, and NaN payloads are preserved).
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Feed a string with a terminator so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write_u8(0xff);
    }

    /// Finalize: splitmix64 over the FNV accumulator for full avalanche.
    pub fn finish(&self) -> u64 {
        let mut x = self.0;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

impl Default for SigHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_hash_differently() {
        let mut a = SigHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = SigHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hashing_is_deterministic() {
        let run = || {
            let mut h = SigHasher::new();
            h.write_str("hash join");
            h.write_f64(1995.0);
            h.write_u64(42);
            h.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn finalizer_spreads_shard_and_tag_bits() {
        // Sequential inputs must not collapse onto a few values in either
        // the middle bits (shard selection) or the top bits (hashbrown's
        // probe tag).
        let mut shard_bits = std::collections::HashSet::new();
        let mut top_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = SigHasher::new();
            h.write_u64(i);
            let key = h.finish();
            shard_bits.insert((key >> 32) & 0xf);
            top_bits.insert(key >> 60);
        }
        assert!(shard_bits.len() > 8, "middle bits not well distributed: {} values", shard_bits.len());
        assert!(top_bits.len() > 8, "top bits not well distributed: {} values", top_bits.len());
    }
}
