//! Query, predicate and physical-plan model.
//!
//! This crate defines the structures the whole reproduction pipeline speaks:
//!
//! * [`predicate`] — predicate expression trees (atomic comparisons combined
//!   with AND/OR), including `LIKE`/`NOT LIKE`/`IN` string predicates, and
//!   their evaluation against table rows;
//! * [`logical`] — a logical query: the set of joined tables (a connected
//!   subgraph of the schema's join graph), per-table predicates and the
//!   projection/aggregation list;
//! * [`plan`] — physical plan trees (the input of the cost estimator):
//!   Seq/Index scans, Hash/Merge/Nested-loop joins, Sort and Aggregate nodes,
//!   each optionally annotated with estimated and true cost/cardinality.

pub mod like;
pub mod logical;
pub mod plan;
pub mod predicate;
pub mod sighash;

pub use like::like_match;
pub use logical::{Aggregate, JoinPredicate, LogicalQuery, Projection};
pub use plan::{PhysicalOp, PlanNode, PlanNodeId};
pub use predicate::{AtomPredicate, CompareOp, Operand, Predicate};
pub use sighash::SigHasher;
