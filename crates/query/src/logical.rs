//! Logical queries: joined tables, join predicates, filters and projections.
//!
//! A [`LogicalQuery`] is the object the training-data generator produces and
//! the planner consumes.  It corresponds to the SELECT-PROJECT-JOIN-AGGREGATE
//! queries of the JOB / JOB-light / synthetic workloads.

use crate::predicate::Predicate;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An equi-join predicate between two tables' integer columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinPredicate {
    pub left_table: String,
    pub left_column: String,
    pub right_table: String,
    pub right_column: String,
}

impl JoinPredicate {
    /// Construct a join predicate.
    pub fn new(left_table: &str, left_column: &str, right_table: &str, right_column: &str) -> Self {
        JoinPredicate {
            left_table: left_table.into(),
            left_column: left_column.into(),
            right_table: right_table.into(),
            right_column: right_column.into(),
        }
    }

    /// True when this join touches the given table.
    pub fn involves(&self, table: &str) -> bool {
        self.left_table == table || self.right_table == table
    }

    /// The join column for a given side table, if the table participates.
    pub fn column_for(&self, table: &str) -> Option<&str> {
        if self.left_table == table {
            Some(&self.left_column)
        } else if self.right_table == table {
            Some(&self.right_column)
        } else {
            None
        }
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} = {}.{}", self.left_table, self.left_column, self.right_table, self.right_column)
    }
}

/// Aggregate function applied to a projected column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregate {
    None,
    Min,
    Max,
    Count,
}

/// A projected output column with an optional aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Projection {
    pub table: String,
    pub column: String,
    pub aggregate: Aggregate,
}

/// A logical SPJA query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalQuery {
    /// Tables involved, in no particular order.
    pub tables: Vec<String>,
    /// Equi-join predicates connecting the tables.
    pub joins: Vec<JoinPredicate>,
    /// Filter predicate per table (a table may have none).
    pub filters: HashMap<String, Predicate>,
    /// Output columns.
    pub projections: Vec<Projection>,
}

impl LogicalQuery {
    /// A single-table query with an optional filter.
    pub fn single_table(table: &str, filter: Option<Predicate>) -> Self {
        let mut filters = HashMap::new();
        if let Some(f) = filter {
            filters.insert(table.to_string(), f);
        }
        LogicalQuery {
            tables: vec![table.to_string()],
            joins: Vec::new(),
            filters,
            projections: vec![Projection { table: table.into(), column: "id".into(), aggregate: Aggregate::Count }],
        }
    }

    /// Number of join predicates.
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    /// Filter for a table, if any.
    pub fn filter(&self, table: &str) -> Option<&Predicate> {
        self.filters.get(table)
    }

    /// True when the join graph over `tables` induced by `joins` is connected
    /// (every multi-table query the generator emits must be connected, or the
    /// plan would contain a cross product).
    pub fn is_connected(&self) -> bool {
        if self.tables.len() <= 1 {
            return true;
        }
        let mut reached: Vec<&str> = vec![self.tables[0].as_str()];
        let mut changed = true;
        while changed {
            changed = false;
            for j in &self.joins {
                let l_in = reached.contains(&j.left_table.as_str());
                let r_in = reached.contains(&j.right_table.as_str());
                if l_in && !r_in {
                    reached.push(&j.right_table);
                    changed = true;
                } else if r_in && !l_in {
                    reached.push(&j.left_table);
                    changed = true;
                }
            }
        }
        self.tables.iter().all(|t| reached.contains(&t.as_str()))
    }

    /// A human-readable SQL-ish rendering (for logs and examples).
    pub fn to_sql(&self) -> String {
        let mut proj: Vec<String> = self
            .projections
            .iter()
            .map(|p| match p.aggregate {
                Aggregate::None => format!("{}.{}", p.table, p.column),
                Aggregate::Min => format!("MIN({}.{})", p.table, p.column),
                Aggregate::Max => format!("MAX({}.{})", p.table, p.column),
                Aggregate::Count => format!("COUNT({}.{})", p.table, p.column),
            })
            .collect();
        if proj.is_empty() {
            proj.push("*".to_string());
        }
        let mut where_parts: Vec<String> = self.joins.iter().map(|j| j.to_string()).collect();
        for t in &self.tables {
            if let Some(f) = self.filters.get(t) {
                where_parts.push(f.to_string());
            }
        }
        let where_clause =
            if where_parts.is_empty() { String::new() } else { format!(" WHERE {}", where_parts.join(" AND ")) };
        format!("SELECT {} FROM {}{}", proj.join(", "), self.tables.join(", "), where_clause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Operand, Predicate};

    fn two_table_query() -> LogicalQuery {
        let mut filters = HashMap::new();
        filters.insert(
            "title".to_string(),
            Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2000.0)),
        );
        LogicalQuery {
            tables: vec!["title".into(), "movie_companies".into()],
            joins: vec![JoinPredicate::new("movie_companies", "movie_id", "title", "id")],
            filters,
            projections: vec![Projection { table: "title".into(), column: "id".into(), aggregate: Aggregate::Count }],
        }
    }

    #[test]
    fn join_predicate_accessors() {
        let j = JoinPredicate::new("movie_companies", "movie_id", "title", "id");
        assert!(j.involves("title"));
        assert!(j.involves("movie_companies"));
        assert!(!j.involves("cast_info"));
        assert_eq!(j.column_for("title"), Some("id"));
        assert_eq!(j.column_for("movie_companies"), Some("movie_id"));
        assert_eq!(j.column_for("cast_info"), None);
        assert_eq!(j.to_string(), "movie_companies.movie_id = title.id");
    }

    #[test]
    fn connectivity() {
        let q = two_table_query();
        assert!(q.is_connected());
        let disconnected = LogicalQuery {
            tables: vec!["title".into(), "cast_info".into()],
            joins: vec![],
            filters: HashMap::new(),
            projections: vec![],
        };
        assert!(!disconnected.is_connected());
        let single = LogicalQuery::single_table("title", None);
        assert!(single.is_connected());
    }

    #[test]
    fn sql_rendering_mentions_all_parts() {
        let q = two_table_query();
        let sql = q.to_sql();
        assert!(sql.contains("SELECT COUNT(title.id)"));
        assert!(sql.contains("FROM title, movie_companies"));
        assert!(sql.contains("movie_companies.movie_id = title.id"));
        assert!(sql.contains("production_year > 2000"));
    }

    #[test]
    fn single_table_helper() {
        let q = LogicalQuery::single_table(
            "movie_companies",
            Some(Predicate::atom("movie_companies", "note", CompareOp::Like, Operand::Str("%(presents)%".into()))),
        );
        assert_eq!(q.tables.len(), 1);
        assert_eq!(q.num_joins(), 0);
        assert!(q.filter("movie_companies").is_some());
        assert!(q.filter("title").is_none());
    }
}
