//! Physical plan trees — the input of the cost estimator.
//!
//! Each node carries a physical operator (Table 1 of the paper), the tables
//! it produces, and optional annotations: the traditional estimator's
//! estimates and the executor's true cost/cardinality (the training targets).

use crate::logical::JoinPredicate;
use crate::predicate::Predicate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within one plan (pre-order position).
pub type PlanNodeId = usize;

/// Physical operator of a plan node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalOp {
    /// Full scan of a table, optionally filtering with a predicate.
    SeqScan { table: String, predicate: Option<Predicate> },
    /// Index lookup on `index_column` (driven by a join key or an equality
    /// predicate), with an optional residual filter.
    IndexScan { table: String, index_column: String, predicate: Option<Predicate> },
    /// Hash join on an equi-join predicate; left child is the build side.
    HashJoin { condition: JoinPredicate },
    /// Sort-merge join on an equi-join predicate.
    MergeJoin { condition: JoinPredicate },
    /// Nested-loop join (index nested loop when the inner child is an
    /// [`PhysicalOp::IndexScan`]).
    NestedLoopJoin { condition: JoinPredicate },
    /// Sort on a set of columns.
    Sort { table: String, columns: Vec<String> },
    /// Aggregation (plain or hash) over the child.
    Aggregate { hash: bool, group_columns: Vec<String> },
}

impl PhysicalOp {
    /// Short operator name (used in displays and the operation one-hot).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::SeqScan { .. } => "Seq Scan",
            PhysicalOp::IndexScan { .. } => "Index Scan",
            PhysicalOp::HashJoin { .. } => "Hash Join",
            PhysicalOp::MergeJoin { .. } => "Merge Join",
            PhysicalOp::NestedLoopJoin { .. } => "Nested Loop",
            PhysicalOp::Sort { .. } => "Sort",
            PhysicalOp::Aggregate { .. } => "Aggregate",
        }
    }

    /// Index of the operator in the operation one-hot encoding.
    pub fn one_hot_index(&self) -> usize {
        match self {
            PhysicalOp::SeqScan { .. } => 0,
            PhysicalOp::IndexScan { .. } => 1,
            PhysicalOp::HashJoin { .. } => 2,
            PhysicalOp::MergeJoin { .. } => 3,
            PhysicalOp::NestedLoopJoin { .. } => 4,
            PhysicalOp::Sort { .. } => 5,
            PhysicalOp::Aggregate { .. } => 6,
        }
    }

    /// Number of distinct physical operators (width of the one-hot).
    pub const NUM_OPS: usize = 7;

    /// True for scan operators.
    pub fn is_scan(&self) -> bool {
        matches!(self, PhysicalOp::SeqScan { .. } | PhysicalOp::IndexScan { .. })
    }

    /// True for join operators.
    pub fn is_join(&self) -> bool {
        matches!(self, PhysicalOp::HashJoin { .. } | PhysicalOp::MergeJoin { .. } | PhysicalOp::NestedLoopJoin { .. })
    }

    /// The filter predicate attached to this node, if any.
    pub fn predicate(&self) -> Option<&Predicate> {
        match self {
            PhysicalOp::SeqScan { predicate, .. } | PhysicalOp::IndexScan { predicate, .. } => predicate.as_ref(),
            _ => None,
        }
    }

    /// The scanned table, for scan operators.
    pub fn scan_table(&self) -> Option<&str> {
        match self {
            PhysicalOp::SeqScan { table, .. }
            | PhysicalOp::IndexScan { table, .. }
            | PhysicalOp::Sort { table, .. } => Some(table),
            _ => None,
        }
    }
}

/// Per-node annotations produced by the ground-truth executor and the
/// traditional estimator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeAnnotations {
    /// True output cardinality measured by executing the plan.
    pub true_cardinality: Option<f64>,
    /// True cost (work units, used as "real execution time").
    pub true_cost: Option<f64>,
    /// Cardinality estimated by the traditional (PostgreSQL-style) estimator.
    pub estimated_cardinality: Option<f64>,
    /// Cost estimated by the traditional estimator.
    pub estimated_cost: Option<f64>,
}

/// A node of a physical plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    pub op: PhysicalOp,
    pub children: Vec<PlanNode>,
    pub annotations: NodeAnnotations,
}

impl PlanNode {
    /// A leaf node.
    pub fn leaf(op: PhysicalOp) -> Self {
        PlanNode { op, children: Vec::new(), annotations: NodeAnnotations::default() }
    }

    /// An inner node with children (left = first).
    pub fn inner(op: PhysicalOp, children: Vec<PlanNode>) -> Self {
        PlanNode { op, children, annotations: NodeAnnotations::default() }
    }

    /// Number of nodes in the subtree rooted here.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    /// Height of the subtree (a leaf has height 1).
    pub fn height(&self) -> usize {
        1 + self.children.iter().map(|c| c.height()).max().unwrap_or(0)
    }

    /// Tables produced by this subtree (union of scanned tables).
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        if let Some(t) = self.op.scan_table() {
            out.push(t.to_string());
        }
        for c in &self.children {
            c.collect_tables(out);
        }
    }

    /// Visit all nodes in pre-order (the DFS order used by the plan
    /// encoding), calling `f(node, depth)`.
    pub fn visit_preorder<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode, usize)) {
        self.visit_inner(f, 0);
    }

    fn visit_inner<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode, usize), depth: usize) {
        f(self, depth);
        for c in &self.children {
            c.visit_inner(f, depth + 1);
        }
    }

    /// Visit all nodes mutably in post-order (children before parents), the
    /// order in which the executor and estimators annotate the plan.
    pub fn visit_postorder_mut(&mut self, f: &mut impl FnMut(&mut PlanNode)) {
        for c in &mut self.children {
            c.visit_postorder_mut(f);
        }
        f(self);
    }

    /// All nodes in pre-order, flattened.
    pub fn nodes_preorder(&self) -> Vec<&PlanNode> {
        let mut out = Vec::with_capacity(self.size());
        self.visit_preorder(&mut |n, _| out.push(n));
        out
    }

    /// A stable textual signature of the subtree structure (used as the key
    /// of the representation memory pool in Section 3's workflow).
    pub fn signature(&self) -> String {
        let mut sig = String::new();
        self.signature_inner(&mut sig);
        sig
    }

    fn signature_inner(&self, out: &mut String) {
        out.push('(');
        out.push_str(self.op.name());
        match &self.op {
            PhysicalOp::SeqScan { table, predicate } => {
                out.push(':');
                out.push_str(table);
                if let Some(p) = predicate {
                    out.push(':');
                    out.push_str(&p.to_string());
                }
            }
            PhysicalOp::IndexScan { table, index_column, predicate } => {
                out.push(':');
                out.push_str(table);
                out.push(':');
                out.push_str(index_column);
                if let Some(p) = predicate {
                    out.push(':');
                    out.push_str(&p.to_string());
                }
            }
            PhysicalOp::HashJoin { condition }
            | PhysicalOp::MergeJoin { condition }
            | PhysicalOp::NestedLoopJoin { condition } => {
                out.push(':');
                out.push_str(&condition.to_string());
            }
            PhysicalOp::Sort { table, columns } => {
                out.push(':');
                out.push_str(table);
                for c in columns {
                    out.push(':');
                    out.push_str(c);
                }
            }
            PhysicalOp::Aggregate { hash, group_columns } => {
                out.push(':');
                out.push_str(if *hash { "hash" } else { "plain" });
                for c in group_columns {
                    out.push(':');
                    out.push_str(c);
                }
            }
        }
        for c in &self.children {
            c.signature_inner(out);
        }
        out.push(')');
    }

    /// Allocation-free 64-bit structural signature of the subtree rooted
    /// here — the key of the representation memory pool and the
    /// subtree-state cache in the optimizer-in-the-loop serving path.
    ///
    /// Covers the same content as [`PlanNode::signature`] (operator, tables,
    /// columns, full predicate trees, children order) but streams it through
    /// [`crate::sighash::SigHasher`] instead of building a `String`, and
    /// composes bottom-up so each node hashes its children's sub-signatures
    /// rather than re-walking their subtrees.  Two sub-plans with equal
    /// textual signatures always have equal hashes; distinct sub-plans
    /// collide only with 64-bit birthday probability (see the collision
    /// posture notes in [`crate::sighash`]).
    pub fn signature_hash(&self) -> u64 {
        self.signature_hash_from_children(self.children.iter().map(|c| c.signature_hash()))
    }

    /// [`PlanNode::signature_hash`] with the children's sub-signatures
    /// supplied by the caller — the bottom-up composition step, exposed so
    /// encoders that already hold each child's signature (e.g.
    /// `FeatureExtractor::encode_plan`) don't re-walk the subtrees.
    ///
    /// `child_hashes` must yield the children's signatures in order.
    pub fn signature_hash_from_children(&self, child_hashes: impl IntoIterator<Item = u64>) -> u64 {
        let mut h = crate::sighash::SigHasher::new();
        h.write_u8(self.op.one_hot_index() as u8);
        match &self.op {
            PhysicalOp::SeqScan { table, predicate } => {
                h.write_str(table);
                if let Some(p) = predicate {
                    p.hash_signature(&mut h);
                }
            }
            PhysicalOp::IndexScan { table, index_column, predicate } => {
                h.write_str(table);
                h.write_str(index_column);
                if let Some(p) = predicate {
                    p.hash_signature(&mut h);
                }
            }
            PhysicalOp::HashJoin { condition }
            | PhysicalOp::MergeJoin { condition }
            | PhysicalOp::NestedLoopJoin { condition } => {
                h.write_str(&condition.left_table);
                h.write_str(&condition.left_column);
                h.write_str(&condition.right_table);
                h.write_str(&condition.right_column);
            }
            PhysicalOp::Sort { table, columns } => {
                h.write_str(table);
                for c in columns {
                    h.write_str(c);
                }
            }
            PhysicalOp::Aggregate { hash, group_columns } => {
                h.write_u8(*hash as u8);
                for c in group_columns {
                    h.write_str(c);
                }
            }
        }
        let mut n_children = 0u8;
        for ch in child_hashes {
            h.write_u64(ch);
            n_children += 1;
        }
        h.write_u8(n_children);
        h.finish()
    }

    /// Indented textual rendering, similar to `EXPLAIN` output.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.visit_preorder(&mut |n, depth| {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("-> {}", n.op.name()));
            if let Some(t) = n.op.scan_table() {
                out.push_str(&format!(" on {t}"));
            }
            if let (Some(est), Some(real)) = (n.annotations.estimated_cardinality, n.annotations.true_cardinality) {
                out.push_str(&format!(" (rows est={est:.0} real={real:.0})"));
            }
            out.push('\n');
        });
        out
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Operand, Predicate};

    fn sample_plan() -> PlanNode {
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "title".into(),
            predicate: Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2010.0))),
        });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_mc, scan_t],
        );
        PlanNode::inner(PhysicalOp::Aggregate { hash: false, group_columns: vec![] }, vec![join])
    }

    #[test]
    fn size_height_tables() {
        let p = sample_plan();
        assert_eq!(p.size(), 4);
        assert_eq!(p.height(), 3);
        assert_eq!(p.tables(), vec!["movie_companies".to_string(), "title".to_string()]);
    }

    #[test]
    fn preorder_visits_root_first() {
        let p = sample_plan();
        let nodes = p.nodes_preorder();
        assert_eq!(nodes[0].op.name(), "Aggregate");
        assert_eq!(nodes[1].op.name(), "Hash Join");
        assert_eq!(nodes[2].op.name(), "Seq Scan");
    }

    #[test]
    fn postorder_annotation() {
        let mut p = sample_plan();
        let mut order = Vec::new();
        p.visit_postorder_mut(&mut |n| {
            order.push(n.op.name());
            n.annotations.true_cardinality = Some(1.0);
        });
        assert_eq!(order.last(), Some(&"Aggregate"));
        assert!(p.annotations.true_cardinality.is_some());
    }

    #[test]
    fn signature_distinguishes_plans() {
        let a = sample_plan();
        let mut b = sample_plan();
        // Change the predicate in b.
        if let PhysicalOp::SeqScan { predicate, .. } = &mut b.children[0].children[1].op {
            *predicate = Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(1990.0)));
        }
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), sample_plan().signature());
    }

    #[test]
    fn signature_hash_tracks_textual_signature() {
        let a = sample_plan();
        let mut b = sample_plan();
        if let PhysicalOp::SeqScan { predicate, .. } = &mut b.children[0].children[1].op {
            *predicate = Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(1990.0)));
        }
        // Equal plans hash equal, distinct plans hash distinct.
        assert_eq!(a.signature_hash(), sample_plan().signature_hash());
        assert_ne!(a.signature_hash(), b.signature_hash());
        // Children order matters, exactly as in the textual signature.
        let l = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None });
        let r = PlanNode::leaf(PhysicalOp::SeqScan { table: "keyword".into(), predicate: None });
        let cond = JoinPredicate::new("a", "x", "b", "y");
        let lr = PlanNode::inner(PhysicalOp::HashJoin { condition: cond.clone() }, vec![l.clone(), r.clone()]);
        let rl = PlanNode::inner(PhysicalOp::HashJoin { condition: cond }, vec![r, l]);
        assert_ne!(lr.signature_hash(), rl.signature_hash());
    }

    /// Collision sanity for the 64-bit subplan signature (the key of the
    /// serving caches): over well beyond 1e5 structurally distinct generated
    /// sub-plans — scans sweeping tables/columns/operators/constants, string
    /// and compound predicates, join trees over distinct scan pairs and
    /// operators — every textually distinct plan must hash to a distinct
    /// 64-bit signature.  At this scale the birthday bound predicts ~4e-10
    /// collision probability, so a failure here means a broken hasher, not
    /// bad luck; the collision *posture* (what a collision would cost) is
    /// documented in `query::sighash`.
    #[test]
    fn signature_collision_free_over_1e5_subplans() {
        let tables = ["title", "movie_companies", "movie_info", "cast_info", "movie_keyword"];
        let columns = ["id", "production_year", "kind_id", "movie_id", "info_type_id"];
        let ops = [CompareOp::Eq, CompareOp::Gt, CompareOp::Lt, CompareOp::Ne];
        let mut plans: Vec<PlanNode> = Vec::new();

        // 5*5*4*800 = 80_000 predicate scans.
        for t in tables {
            for c in columns {
                for op in ops {
                    for k in 0..800 {
                        plans.push(PlanNode::leaf(PhysicalOp::SeqScan {
                            table: t.into(),
                            predicate: Some(Predicate::atom(t, c, op, Operand::Num(k as f64))),
                        }));
                    }
                }
            }
        }
        // 20_000 compound AND/OR predicates (structure varies with parity).
        for k in 0..20_000 {
            let a = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(k as f64));
            let b = Predicate::atom("title", "kind_id", CompareOp::Eq, Operand::Num((k % 7) as f64));
            let p = if k % 2 == 0 { a.and(b) } else { a.or(b) };
            plans.push(PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: Some(p) }));
        }
        // 10_000 string predicates.
        for k in 0..10_000 {
            plans.push(PlanNode::leaf(PhysicalOp::SeqScan {
                table: "movie_companies".into(),
                predicate: Some(Predicate::atom(
                    "movie_companies",
                    "note",
                    CompareOp::Like,
                    Operand::Str(format!("%pattern-{k}%")),
                )),
            }));
        }
        // 3 * 6_000 = 18_000 join trees over distinct scan pairs.
        for (i, join_op) in [0usize, 1, 2].into_iter().enumerate() {
            for k in 0..6_000 {
                let l = PlanNode::leaf(PhysicalOp::SeqScan {
                    table: "title".into(),
                    predicate: Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(k as f64))),
                });
                let r = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
                let condition = JoinPredicate::new("movie_companies", "movie_id", "title", "id");
                let op = match join_op {
                    0 => PhysicalOp::HashJoin { condition },
                    1 => PhysicalOp::MergeJoin { condition },
                    _ => PhysicalOp::NestedLoopJoin { condition },
                };
                let children = if i % 2 == 0 { vec![l, r] } else { vec![r, l] };
                plans.push(PlanNode::inner(op, children));
            }
        }

        assert!(plans.len() >= 100_000, "need at least 1e5 sub-plans, built {}", plans.len());
        let mut textual = std::collections::HashSet::with_capacity(plans.len());
        let mut hashes = std::collections::HashSet::with_capacity(plans.len());
        for p in &plans {
            // Only count structurally distinct plans (the generators above
            // are constructed to be distinct; this guards the test itself).
            if textual.insert(p.signature()) {
                assert!(hashes.insert(p.signature_hash()), "64-bit signature collision on {}", p.signature());
            }
        }
        assert!(textual.len() >= 100_000, "only {} distinct sub-plans generated", textual.len());
        assert_eq!(textual.len(), hashes.len());
    }

    #[test]
    fn one_hot_indexes_are_unique_and_bounded() {
        let ops = [
            PhysicalOp::SeqScan { table: "t".into(), predicate: None },
            PhysicalOp::IndexScan { table: "t".into(), index_column: "id".into(), predicate: None },
            PhysicalOp::HashJoin { condition: JoinPredicate::new("a", "x", "b", "y") },
            PhysicalOp::MergeJoin { condition: JoinPredicate::new("a", "x", "b", "y") },
            PhysicalOp::NestedLoopJoin { condition: JoinPredicate::new("a", "x", "b", "y") },
            PhysicalOp::Sort { table: "t".into(), columns: vec![] },
            PhysicalOp::Aggregate { hash: true, group_columns: vec![] },
        ];
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            let idx = op.one_hot_index();
            assert!(idx < PhysicalOp::NUM_OPS);
            assert!(seen.insert(idx));
        }
    }

    #[test]
    fn explain_contains_operators() {
        let p = sample_plan();
        let text = p.explain();
        assert!(text.contains("Hash Join"));
        assert!(text.contains("Seq Scan on title"));
        assert!(p.to_string().contains("Aggregate"));
    }

    #[test]
    fn scan_and_join_classification() {
        let p = sample_plan();
        assert!(p.children[0].op.is_join());
        assert!(p.children[0].children[0].op.is_scan());
        assert!(!p.op.is_join());
        assert!(p.children[0].children[1].op.predicate().is_some());
    }
}
