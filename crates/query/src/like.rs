//! SQL `LIKE` pattern matching.
//!
//! Supports the `%` (any substring) and `_` (any single character) wildcards,
//! which is all the JOB workload uses.  Matching is case-sensitive, like
//! PostgreSQL's `LIKE`.

/// Returns true when `text` matches the SQL LIKE `pattern`.
///
/// ```
/// use query::like_match;
/// assert!(like_match("Dinosaur Planet", "Din%"));
/// assert!(like_match("(2002-06-29)", "%06%"));
/// assert!(like_match("abc", "a_c"));
/// assert!(!like_match("abc", "a_d"));
/// ```
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Classic two-pointer algorithm with backtracking on the last `%`.
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut star_ti = 0usize;
    while ti < t.len() {
        if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_without_wildcards() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
    }

    #[test]
    fn prefix_suffix_contains() {
        assert!(like_match("Dinos in Kas", "Din%"));
        assert!(like_match("Dinos in Kas", "%Kas"));
        assert!(like_match("Dinos in Kas", "%in%"));
        assert!(!like_match("Dinos in Kas", "%xyz%"));
    }

    #[test]
    fn underscore_matches_single_char() {
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("caat", "c_t"));
    }

    #[test]
    fn percent_matches_empty() {
        assert!(like_match("abc", "abc%"));
        assert!(like_match("abc", "%abc"));
        assert!(like_match("", "%"));
        assert!(like_match("", ""));
    }

    #[test]
    fn multiple_percents() {
        assert!(like_match("(as Metro-Goldwyn-Mayer Pictures)", "%(as Metro-Goldwyn-Mayer Pictures)%"));
        assert!(like_match("a(co-production)b", "%(co-production)%"));
        assert!(like_match("xx06yy29zz", "%06%29%"));
        assert!(!like_match("xx29yy06zz", "%06%29%"));
    }

    #[test]
    fn empty_pattern_only_matches_empty() {
        assert!(!like_match("a", ""));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn contains_pattern_agrees_with_str_contains(s in "[a-z]{0,20}", needle in "[a-z]{1,5}") {
            let pattern = format!("%{needle}%");
            prop_assert_eq!(like_match(&s, &pattern), s.contains(&needle));
        }

        #[test]
        fn prefix_pattern_agrees_with_starts_with(s in "[a-z]{0,20}", prefix in "[a-z]{1,5}") {
            let pattern = format!("{prefix}%");
            prop_assert_eq!(like_match(&s, &pattern), s.starts_with(&prefix));
        }

        #[test]
        fn suffix_pattern_agrees_with_ends_with(s in "[a-z]{0,20}", suffix in "[a-z]{1,5}") {
            let pattern = format!("%{suffix}");
            prop_assert_eq!(like_match(&s, &pattern), s.ends_with(&suffix));
        }

        #[test]
        fn full_wildcard_matches_everything(s in ".{0,30}") {
            prop_assert!(like_match(&s, "%"));
        }
    }
}
