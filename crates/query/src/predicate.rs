//! Predicate expression trees and their evaluation.
//!
//! A predicate is either an atomic comparison `column op operand` or an
//! AND/OR combination of two sub-predicates (the paper's compound predicates,
//! Figure 4).  Operands are numeric constants, string constants or string
//! lists (for `IN`).

use crate::like::like_match;
use imdb::{Table, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator of an atomic predicate (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    Like,
    NotLike,
    In,
}

impl CompareOp {
    /// All operators, in the order used for one-hot encoding.
    pub const ALL: [CompareOp; 9] = [
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Gt,
        CompareOp::Le,
        CompareOp::Ge,
        CompareOp::Like,
        CompareOp::NotLike,
        CompareOp::In,
    ];

    /// Index of this operator in [`CompareOp::ALL`].
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|o| o == self).expect("operator present in ALL")
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Gt => ">",
            CompareOp::Le => "<=",
            CompareOp::Ge => ">=",
            CompareOp::Like => "LIKE",
            CompareOp::NotLike => "NOT LIKE",
            CompareOp::In => "IN",
        };
        write!(f, "{s}")
    }
}

/// Right-hand side of an atomic predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    Num(f64),
    Str(String),
    StrList(Vec<String>),
}

impl Operand {
    /// The string content for string / pattern operands.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Operand::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content for numeric operands.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Operand::Num(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Num(v) => write!(f, "{v}"),
            Operand::Str(s) => write!(f, "'{s}'"),
            Operand::StrList(items) => {
                write!(f, "(")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "'{s}'")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An atomic predicate `table.column op operand`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtomPredicate {
    pub table: String,
    pub column: String,
    pub op: CompareOp,
    pub operand: Operand,
}

impl AtomPredicate {
    /// Construct an atomic predicate.
    pub fn new(table: &str, column: &str, op: CompareOp, operand: Operand) -> Self {
        AtomPredicate { table: table.into(), column: column.into(), op, operand }
    }

    /// Evaluate against a concrete value.
    pub fn matches_value(&self, value: &Value) -> bool {
        match (&self.operand, value) {
            (Operand::Num(rhs), Value::Int(lhs)) => {
                let l = *lhs as f64;
                match self.op {
                    CompareOp::Eq => (l - rhs).abs() < f64::EPSILON,
                    CompareOp::Ne => (l - rhs).abs() >= f64::EPSILON,
                    CompareOp::Lt => l < *rhs,
                    CompareOp::Gt => l > *rhs,
                    CompareOp::Le => l <= *rhs,
                    CompareOp::Ge => l >= *rhs,
                    // LIKE/IN on numeric values never match.
                    _ => false,
                }
            }
            (Operand::Str(rhs), Value::Str(lhs)) => match self.op {
                CompareOp::Eq => lhs == rhs,
                CompareOp::Ne => lhs != rhs,
                CompareOp::Lt => lhs < rhs,
                CompareOp::Gt => lhs > rhs,
                CompareOp::Le => lhs <= rhs,
                CompareOp::Ge => lhs >= rhs,
                CompareOp::Like => like_match(lhs, rhs),
                CompareOp::NotLike => !like_match(lhs, rhs),
                CompareOp::In => lhs == rhs,
            },
            (Operand::StrList(items), Value::Str(lhs)) => match self.op {
                CompareOp::In => items.iter().any(|s| s == lhs),
                CompareOp::Eq => items.iter().any(|s| s == lhs),
                CompareOp::Ne => !items.iter().any(|s| s == lhs),
                _ => false,
            },
            // Type mismatch: predicate never matches.
            _ => false,
        }
    }

    /// Evaluate against a row of a table (false when the column is missing).
    pub fn matches_row(&self, table: &Table, row: usize) -> bool {
        match table.value(&self.column, row) {
            Some(v) => self.matches_value(&v),
            None => false,
        }
    }
}

impl fmt::Display for AtomPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} {} {}", self.table, self.column, self.op, self.operand)
    }
}

/// A predicate expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    Atom(AtomPredicate),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Leaf constructor.
    pub fn atom(table: &str, column: &str, op: CompareOp, operand: Operand) -> Self {
        Predicate::Atom(AtomPredicate::new(table, column, op, operand))
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate the predicate against one row of a single table.
    pub fn matches_row(&self, table: &Table, row: usize) -> bool {
        match self {
            Predicate::Atom(a) => a.matches_row(table, row),
            Predicate::And(l, r) => l.matches_row(table, row) && r.matches_row(table, row),
            Predicate::Or(l, r) => l.matches_row(table, row) || r.matches_row(table, row),
        }
    }

    /// All atomic predicates, in depth-first order (the order used by the
    /// DFS one-to-one predicate encoding of Section 4.1).
    pub fn atoms(&self) -> Vec<&AtomPredicate> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a AtomPredicate>) {
        match self {
            Predicate::Atom(a) => out.push(a),
            Predicate::And(l, r) | Predicate::Or(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
        }
    }

    /// Visit every atomic predicate in depth-first order without collecting
    /// them into a `Vec` — the allocation-free form of [`Predicate::atoms`]
    /// for hot encode paths.
    pub fn for_each_atom<'a>(&'a self, f: &mut impl FnMut(&'a AtomPredicate)) {
        match self {
            Predicate::Atom(a) => f(a),
            Predicate::And(l, r) | Predicate::Or(l, r) => {
                l.for_each_atom(f);
                r.for_each_atom(f);
            }
        }
    }

    /// Number of atomic predicates.
    pub fn num_atoms(&self) -> usize {
        match self {
            Predicate::Atom(_) => 1,
            Predicate::And(l, r) | Predicate::Or(l, r) => l.num_atoms() + r.num_atoms(),
        }
    }

    /// Depth of the predicate tree (an atom has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Predicate::Atom(_) => 1,
            Predicate::And(l, r) | Predicate::Or(l, r) => 1 + l.depth().max(r.depth()),
        }
    }

    /// Tables referenced anywhere in the predicate.
    pub fn tables(&self) -> Vec<&str> {
        let mut tables: Vec<&str> = self.atoms().iter().map(|a| a.table.as_str()).collect();
        tables.sort_unstable();
        tables.dedup();
        tables
    }

    /// Combine an iterator of predicates with AND; returns `None` when empty.
    pub fn conjunction(preds: impl IntoIterator<Item = Predicate>) -> Option<Predicate> {
        preds.into_iter().reduce(|a, b| a.and(b))
    }

    /// Stream this predicate's structure into a signature hasher (see
    /// [`crate::sighash`]); distinguishes AND from OR and every atom field.
    pub fn hash_signature(&self, h: &mut crate::sighash::SigHasher) {
        match self {
            Predicate::Atom(a) => {
                h.write_u8(0);
                h.write_str(&a.table);
                h.write_str(&a.column);
                h.write_u8(a.op.index() as u8);
                match &a.operand {
                    Operand::Num(v) => {
                        h.write_u8(0);
                        h.write_f64(*v);
                    }
                    Operand::Str(s) => {
                        h.write_u8(1);
                        h.write_str(s);
                    }
                    Operand::StrList(items) => {
                        h.write_u8(2);
                        for s in items {
                            h.write_str(s);
                        }
                        h.write_u8(items.len() as u8);
                    }
                }
            }
            Predicate::And(l, r) => {
                h.write_u8(1);
                l.hash_signature(h);
                r.hash_signature(h);
            }
            Predicate::Or(l, r) => {
                h.write_u8(2);
                l.hash_signature(h);
                r.hash_signature(h);
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Atom(a) => write!(f, "{a}"),
            Predicate::And(l, r) => write!(f, "({l} AND {r})"),
            Predicate::Or(l, r) => write!(f, "({l} OR {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{Column, Schema, Table};

    fn company_type_table() -> Table {
        let def = Schema::imdb().table("company_type").expect("exists").clone();
        Table::new(
            def,
            vec![
                Column::Int(vec![1, 2, 3, 4]),
                Column::Str(vec![
                    "production companies".into(),
                    "distributors".into(),
                    "special effects companies".into(),
                    "miscellaneous companies".into(),
                ]),
            ],
        )
    }

    #[test]
    fn numeric_comparisons() {
        let t = company_type_table();
        let p = Predicate::atom("company_type", "id", CompareOp::Gt, Operand::Num(2.0));
        assert!(!p.matches_row(&t, 0));
        assert!(p.matches_row(&t, 2));
        let p = Predicate::atom("company_type", "id", CompareOp::Eq, Operand::Num(1.0));
        assert!(p.matches_row(&t, 0));
        assert!(!p.matches_row(&t, 1));
    }

    #[test]
    fn string_equality_and_like() {
        let t = company_type_table();
        let eq = Predicate::atom("company_type", "kind", CompareOp::Eq, Operand::Str("distributors".into()));
        assert!(eq.matches_row(&t, 1));
        assert!(!eq.matches_row(&t, 0));
        let like = Predicate::atom("company_type", "kind", CompareOp::Like, Operand::Str("%companies%".into()));
        assert!(like.matches_row(&t, 0));
        assert!(!like.matches_row(&t, 1));
        let not_like = Predicate::atom("company_type", "kind", CompareOp::NotLike, Operand::Str("%companies%".into()));
        assert!(not_like.matches_row(&t, 1));
    }

    #[test]
    fn in_list() {
        let t = company_type_table();
        let p = Predicate::atom(
            "company_type",
            "kind",
            CompareOp::In,
            Operand::StrList(vec!["distributors".into(), "nonexistent".into()]),
        );
        assert!(p.matches_row(&t, 1));
        assert!(!p.matches_row(&t, 2));
    }

    #[test]
    fn and_or_semantics() {
        let t = company_type_table();
        let a = Predicate::atom("company_type", "id", CompareOp::Gt, Operand::Num(1.0));
        let b = Predicate::atom("company_type", "kind", CompareOp::Like, Operand::Str("%companies%".into()));
        let and = a.clone().and(b.clone());
        let or = a.or(b);
        // Row 1 (distributors, id 2): a true, b false.
        assert!(!and.matches_row(&t, 1));
        assert!(or.matches_row(&t, 1));
        // Row 0 (production companies, id 1): a false, b true.
        assert!(!and.matches_row(&t, 0));
        assert!(or.matches_row(&t, 0));
        // Row 2: both true.
        assert!(and.matches_row(&t, 2));
    }

    #[test]
    fn atoms_in_dfs_order() {
        let a = Predicate::atom("t", "a", CompareOp::Gt, Operand::Num(1.0));
        let b = Predicate::atom("t", "b", CompareOp::Lt, Operand::Num(2.0));
        let c = Predicate::atom("t", "c", CompareOp::Eq, Operand::Num(3.0));
        let p = a.clone().and(b.clone()).or(c.clone());
        let atoms = p.atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[0].column, "a");
        assert_eq!(atoms[1].column, "b");
        assert_eq!(atoms[2].column, "c");
        assert_eq!(p.num_atoms(), 3);
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn type_mismatch_never_matches() {
        let t = company_type_table();
        let p = Predicate::atom("company_type", "kind", CompareOp::Gt, Operand::Num(10.0));
        assert!(!p.matches_row(&t, 0));
        let p = Predicate::atom("company_type", "id", CompareOp::Like, Operand::Str("%1%".into()));
        assert!(!p.matches_row(&t, 0));
        let p = Predicate::atom("company_type", "missing_col", CompareOp::Eq, Operand::Num(1.0));
        assert!(!p.matches_row(&t, 0));
    }

    #[test]
    fn conjunction_builder() {
        let preds = vec![
            Predicate::atom("t", "a", CompareOp::Gt, Operand::Num(1.0)),
            Predicate::atom("t", "b", CompareOp::Lt, Operand::Num(2.0)),
        ];
        let c = Predicate::conjunction(preds).expect("non-empty");
        assert_eq!(c.num_atoms(), 2);
        assert!(Predicate::conjunction(std::iter::empty()).is_none());
    }

    #[test]
    fn display_round_trips_structure() {
        let p = Predicate::atom("mc", "note", CompareOp::Like, Operand::Str("%(co-production)%".into()))
            .or(Predicate::atom("mc", "note", CompareOp::Like, Operand::Str("%(presents)%".into())));
        let s = p.to_string();
        assert!(s.contains("OR"));
        assert!(s.contains("co-production"));
    }

    #[test]
    fn operator_one_hot_indexes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in CompareOp::ALL {
            assert!(seen.insert(op.index()));
        }
        assert_eq!(seen.len(), CompareOp::ALL.len());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use imdb::Value;
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = CompareOp> {
        prop::sample::select(CompareOp::ALL.to_vec())
    }

    proptest! {
        #[test]
        fn and_implies_both_or(v in -1000i64..1000, rhs1 in -1000f64..1000.0, rhs2 in -1000f64..1000.0, op1 in arb_op(), op2 in arb_op()) {
            let a = AtomPredicate::new("t", "c", op1, Operand::Num(rhs1));
            let b = AtomPredicate::new("t", "c", op2, Operand::Num(rhs2));
            let val = Value::Int(v);
            let and = a.matches_value(&val) && b.matches_value(&val);
            let or = a.matches_value(&val) || b.matches_value(&val);
            // AND result must imply OR result.
            prop_assert!(!and || or);
        }

        #[test]
        fn eq_and_ne_are_complementary_for_numbers(v in -100i64..100, rhs in -100i64..100) {
            let eq = AtomPredicate::new("t", "c", CompareOp::Eq, Operand::Num(rhs as f64));
            let ne = AtomPredicate::new("t", "c", CompareOp::Ne, Operand::Num(rhs as f64));
            let val = Value::Int(v);
            prop_assert_ne!(eq.matches_value(&val), ne.matches_value(&val));
        }

        #[test]
        fn like_and_not_like_complementary(s in "[a-z]{0,12}", pat in "[a-z%]{1,6}") {
            let like = AtomPredicate::new("t", "c", CompareOp::Like, Operand::Str(pat.clone()));
            let nlike = AtomPredicate::new("t", "c", CompareOp::NotLike, Operand::Str(pat));
            let val = Value::Str(s);
            prop_assert_ne!(like.matches_value(&val), nlike.matches_value(&val));
        }
    }
}
