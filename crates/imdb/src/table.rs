//! In-memory columnar table storage.

use crate::schema::{ColumnType, TableDef};
use crate::value::{Value, ValueRef};

/// A single column of data, stored densely by type.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int(Vec<i64>),
    Str(Vec<String>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn ty(&self) -> ColumnType {
        match self {
            Column::Int(_) => ColumnType::Int,
            Column::Str(_) => ColumnType::Str,
        }
    }

    /// Value at a row.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
        }
    }

    /// Borrowed value at a row (no `String` clone for string columns).
    pub fn value_ref(&self, row: usize) -> ValueRef<'_> {
        match self {
            Column::Int(v) => ValueRef::Int(v[row]),
            Column::Str(v) => ValueRef::Str(&v[row]),
        }
    }

    /// Integer at a row (None for string columns).
    pub fn int(&self, row: usize) -> Option<i64> {
        match self {
            Column::Int(v) => Some(v[row]),
            Column::Str(_) => None,
        }
    }

    /// String at a row (None for integer columns).
    pub fn str(&self, row: usize) -> Option<&str> {
        match self {
            Column::Int(_) => None,
            Column::Str(v) => Some(&v[row]),
        }
    }

    /// Number of distinct values in the column.
    pub fn distinct_count(&self) -> usize {
        match self {
            Column::Int(v) => {
                let mut s: Vec<i64> = v.clone();
                s.sort_unstable();
                s.dedup();
                s.len()
            }
            Column::Str(v) => {
                let mut s: Vec<&String> = v.iter().collect();
                s.sort();
                s.dedup();
                s.len()
            }
        }
    }
}

/// An in-memory table: a definition plus one [`Column`] per column definition.
#[derive(Debug, Clone)]
pub struct Table {
    def: TableDef,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Build a table from its definition and column data.
    ///
    /// # Panics
    /// Panics if the number or types of the columns do not match the
    /// definition, or if columns have differing lengths.
    pub fn new(def: TableDef, columns: Vec<Column>) -> Self {
        assert_eq!(def.columns.len(), columns.len(), "column count mismatch for table {}", def.name);
        let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (cd, col) in def.columns.iter().zip(columns.iter()) {
            assert_eq!(cd.ty, col.ty(), "type mismatch for {}.{}", def.name, cd.name);
            assert_eq!(col.len(), n_rows, "ragged column {}.{}", def.name, cd.name);
        }
        Table { def, columns, n_rows }
    }

    /// The table's definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.def.column_index(name).map(|i| &self.columns[i])
    }

    /// Integer value of a named column at a row.
    pub fn int(&self, column: &str, row: usize) -> Option<i64> {
        self.column_by_name(column).and_then(|c| c.int(row))
    }

    /// String value of a named column at a row.
    pub fn str(&self, column: &str, row: usize) -> Option<&str> {
        self.column_by_name(column).and_then(|c| c.str(row))
    }

    /// Value of a named column at a row.
    pub fn value(&self, column: &str, row: usize) -> Option<Value> {
        self.column_by_name(column).map(|c| c.value(row))
    }

    /// Borrowed value of a named column at a row.
    pub fn value_ref(&self, column: &str, row: usize) -> Option<ValueRef<'_>> {
        self.column_by_name(column).map(|c| c.value_ref(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn mini_title() -> Table {
        let def = Schema::imdb().table("company_type").expect("exists").clone();
        Table::new(
            def,
            vec![
                Column::Int(vec![1, 2, 3, 4]),
                Column::Str(vec![
                    "production companies".into(),
                    "distributors".into(),
                    "special effects companies".into(),
                    "miscellaneous companies".into(),
                ]),
            ],
        )
    }

    #[test]
    fn accessors_work() {
        let t = mini_title();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.int("id", 2), Some(3));
        assert_eq!(t.str("kind", 0), Some("production companies"));
        assert_eq!(t.value("id", 1), Some(Value::Int(2)));
        assert_eq!(t.value_ref("id", 1), Some(ValueRef::Int(2)));
        assert_eq!(t.value_ref("kind", 1), Some(ValueRef::Str("distributors")));
        assert_eq!(t.value_ref("missing", 1), None);
        assert_eq!(t.name(), "company_type");
    }

    #[test]
    fn distinct_count() {
        let c = Column::Int(vec![1, 1, 2, 3, 3, 3]);
        assert_eq!(c.distinct_count(), 3);
        let s = Column::Str(vec!["a".into(), "b".into(), "a".into()]);
        assert_eq!(s.distinct_count(), 2);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn mismatched_types_panic() {
        let def = Schema::imdb().table("company_type").expect("exists").clone();
        let _ = Table::new(def, vec![Column::Str(vec![]), Column::Str(vec![])]);
    }

    #[test]
    #[should_panic(expected = "ragged column")]
    fn ragged_columns_panic() {
        let def = Schema::imdb().table("company_type").expect("exists").clone();
        let _ = Table::new(def, vec![Column::Int(vec![1, 2]), Column::Str(vec!["x".into()])]);
    }

    #[test]
    fn wrong_type_access_returns_none() {
        let t = mini_title();
        assert_eq!(t.int("kind", 0), None);
        assert_eq!(t.str("id", 0), None);
        assert_eq!(t.column_by_name("missing").map(|_| ()), None);
    }
}
