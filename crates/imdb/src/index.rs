//! Hash indexes on key columns.
//!
//! The executor uses these to implement index scans and index-nested-loop
//! joins; the traditional cost model charges them at random-page cost.

use crate::table::{Column, Table};
use std::collections::HashMap;

/// A hash index from an integer key column to the row ids holding each key.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<i64, Vec<usize>>,
}

impl HashIndex {
    /// Build an index over an integer column of a table.
    ///
    /// Returns `None` if the column does not exist or is not an integer column.
    pub fn build(table: &Table, column: &str) -> Option<Self> {
        let col = table.column_by_name(column)?;
        let Column::Int(values) = col else { return None };
        let mut map: HashMap<i64, Vec<usize>> = HashMap::with_capacity(values.len());
        for (row, &v) in values.iter().enumerate() {
            map.entry(v).or_default().push(row);
        }
        Some(HashIndex { map })
    }

    /// Rows holding the given key (empty when absent).
    pub fn lookup(&self, key: i64) -> &[usize] {
        self.map.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Average number of rows per key.
    pub fn avg_rows_per_key(&self) -> f64 {
        if self.map.is_empty() {
            0.0
        } else {
            self.map.values().map(|v| v.len()).sum::<usize>() as f64 / self.map.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn keyword_table() -> Table {
        let def = Schema::imdb().table("keyword").expect("exists").clone();
        Table::new(
            def,
            vec![
                Column::Int(vec![1, 2, 3, 4, 5]),
                Column::Str(vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()]),
            ],
        )
    }

    #[test]
    fn pk_index_lookup() {
        let t = keyword_table();
        let idx = HashIndex::build(&t, "id").expect("int column");
        assert_eq!(idx.lookup(3), &[2]);
        assert_eq!(idx.lookup(99), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 5);
        assert!((idx.avg_rows_per_key() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn index_on_string_column_is_none() {
        let t = keyword_table();
        assert!(HashIndex::build(&t, "keyword").is_none());
        assert!(HashIndex::build(&t, "missing").is_none());
    }

    #[test]
    fn duplicate_keys_grouped() {
        let def = Schema::imdb().table("movie_keyword").expect("exists").clone();
        let t = Table::new(
            def,
            vec![Column::Int(vec![1, 2, 3, 4]), Column::Int(vec![10, 10, 20, 10]), Column::Int(vec![1, 2, 3, 1])],
        );
        let idx = HashIndex::build(&t, "movie_id").expect("int column");
        assert_eq!(idx.lookup(10), &[0, 1, 3]);
        assert_eq!(idx.distinct_keys(), 2);
    }
}
