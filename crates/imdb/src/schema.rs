//! Schema of the synthetic IMDB-like database and its PK-FK join graph.

use serde::{Deserialize, Serialize};

/// Data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    Int,
    Str,
}

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
    /// True when this column is the table's primary key.
    pub primary_key: bool,
    /// `(table, column)` this column references, when it is a foreign key.
    pub references: Option<(String, String)>,
    /// True when an index exists on this column (PKs always have one).
    pub indexed: bool,
}

impl ColumnDef {
    fn int(name: &str) -> Self {
        ColumnDef { name: name.into(), ty: ColumnType::Int, primary_key: false, references: None, indexed: false }
    }

    fn str(name: &str) -> Self {
        ColumnDef { name: name.into(), ty: ColumnType::Str, primary_key: false, references: None, indexed: false }
    }

    fn pk(name: &str) -> Self {
        ColumnDef { name: name.into(), ty: ColumnType::Int, primary_key: true, references: None, indexed: true }
    }

    fn fk(name: &str, table: &str, column: &str) -> Self {
        ColumnDef {
            name: name.into(),
            ty: ColumnType::Int,
            primary_key: false,
            references: Some((table.into(), column.into())),
            indexed: true,
        }
    }
}

/// Definition of a table: its name and ordered column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDef {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// The primary-key column, if any.
    pub fn primary_key(&self) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.primary_key)
    }
}

/// An undirected PK-FK join edge of the schema's join graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinEdge {
    pub fk_table: String,
    pub fk_column: String,
    pub pk_table: String,
    pub pk_column: String,
}

/// The database schema: table definitions plus the derived join graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    pub tables: Vec<TableDef>,
}

impl Schema {
    /// The synthetic IMDB-like schema used throughout the reproduction.
    ///
    /// Fact tables reference `title` (movies); the dimension tables
    /// (`info_type`, `company_type`, `keyword`, `company_name`) carry the
    /// string values used by the JOB-style predicates.
    pub fn imdb() -> Self {
        let tables = vec![
            TableDef {
                name: "title".into(),
                columns: vec![
                    ColumnDef::pk("id"),
                    ColumnDef::str("title"),
                    ColumnDef::int("kind_id"),
                    ColumnDef::int("production_year"),
                    ColumnDef::int("season_nr"),
                    ColumnDef::int("episode_nr"),
                ],
            },
            TableDef {
                name: "movie_companies".into(),
                columns: vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", "title", "id"),
                    ColumnDef::fk("company_id", "company_name", "id"),
                    ColumnDef::fk("company_type_id", "company_type", "id"),
                    ColumnDef::str("note"),
                ],
            },
            TableDef {
                name: "movie_info_idx".into(),
                columns: vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", "title", "id"),
                    ColumnDef::fk("info_type_id", "info_type", "id"),
                    ColumnDef::str("info"),
                ],
            },
            TableDef {
                name: "movie_info".into(),
                columns: vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", "title", "id"),
                    ColumnDef::fk("info_type_id", "info_type", "id"),
                    ColumnDef::str("info"),
                ],
            },
            TableDef {
                name: "movie_keyword".into(),
                columns: vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", "title", "id"),
                    ColumnDef::fk("keyword_id", "keyword", "id"),
                ],
            },
            TableDef {
                name: "cast_info".into(),
                columns: vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", "title", "id"),
                    ColumnDef::int("person_id"),
                    ColumnDef::int("role_id"),
                    ColumnDef::str("note"),
                ],
            },
            TableDef { name: "company_type".into(), columns: vec![ColumnDef::pk("id"), ColumnDef::str("kind")] },
            TableDef { name: "info_type".into(), columns: vec![ColumnDef::pk("id"), ColumnDef::str("info")] },
            TableDef { name: "keyword".into(), columns: vec![ColumnDef::pk("id"), ColumnDef::str("keyword")] },
            TableDef {
                name: "company_name".into(),
                columns: vec![ColumnDef::pk("id"), ColumnDef::str("name"), ColumnDef::str("country_code")],
            },
        ];
        Schema { tables }
    }

    /// Look up a table definition by name.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// All PK-FK join edges of the schema.
    pub fn join_edges(&self) -> Vec<JoinEdge> {
        let mut edges = Vec::new();
        for t in &self.tables {
            for c in &t.columns {
                if let Some((pk_table, pk_column)) = &c.references {
                    edges.push(JoinEdge {
                        fk_table: t.name.clone(),
                        fk_column: c.name.clone(),
                        pk_table: pk_table.clone(),
                        pk_column: pk_column.clone(),
                    });
                }
            }
        }
        edges
    }

    /// Join edges incident to a table.
    pub fn edges_for(&self, table: &str) -> Vec<JoinEdge> {
        self.join_edges().into_iter().filter(|e| e.fk_table == table || e.pk_table == table).collect()
    }

    /// All (table, column) pairs, in schema order.  Used by the feature
    /// encoder to assign one-hot positions.
    pub fn all_columns(&self) -> Vec<(String, String)> {
        let mut cols = Vec::new();
        for t in &self.tables {
            for c in &t.columns {
                cols.push((t.name.clone(), c.name.clone()));
            }
        }
        cols
    }

    /// All indexed (table, column) pairs.
    pub fn all_indexes(&self) -> Vec<(String, String)> {
        let mut idx = Vec::new();
        for t in &self.tables {
            for c in &t.columns {
                if c.indexed {
                    idx.push((t.name.clone(), c.name.clone()));
                }
            }
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imdb_schema_has_expected_tables() {
        let s = Schema::imdb();
        for name in ["title", "movie_companies", "movie_info_idx", "company_type", "info_type"] {
            assert!(s.table(name).is_some(), "missing table {name}");
        }
        assert_eq!(s.tables.len(), 10);
    }

    #[test]
    fn join_edges_reference_existing_tables() {
        let s = Schema::imdb();
        for e in s.join_edges() {
            assert!(s.table(&e.fk_table).is_some());
            assert!(s.table(&e.pk_table).is_some());
            let fk_tab = s.table(&e.fk_table).expect("table exists");
            assert!(fk_tab.column(&e.fk_column).is_some());
        }
        assert!(s.join_edges().len() >= 8);
    }

    #[test]
    fn every_table_has_a_primary_key() {
        let s = Schema::imdb();
        for t in &s.tables {
            assert!(t.primary_key().is_some(), "{} lacks a PK", t.name);
        }
    }

    #[test]
    fn column_index_lookup() {
        let s = Schema::imdb();
        let t = s.table("title").expect("title exists");
        assert_eq!(t.column_index("id"), Some(0));
        assert_eq!(t.column_index("production_year"), Some(3));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn edges_for_title_cover_fact_tables() {
        let s = Schema::imdb();
        let edges = s.edges_for("title");
        let fk_tables: Vec<&str> = edges.iter().map(|e| e.fk_table.as_str()).collect();
        assert!(fk_tables.contains(&"movie_companies"));
        assert!(fk_tables.contains(&"movie_info_idx"));
        assert!(fk_tables.contains(&"cast_info"));
    }

    #[test]
    fn all_columns_and_indexes_nonempty() {
        let s = Schema::imdb();
        assert!(s.all_columns().len() > 20);
        assert!(s.all_indexes().len() >= 10);
    }
}
