//! Deterministic synthetic IMDB-like data generator.
//!
//! The generator's goal is not to look like IMDB row-for-row but to exhibit
//! the statistical structure the paper's estimator exploits and that breaks
//! traditional estimators:
//!
//! * **Skew** — movies receive companies / info rows / keywords with a
//!   Zipf-like fan-out, production years are biased toward recent decades.
//! * **Cross-column correlation** — a movie-company `note` pattern depends on
//!   the company type *and* on the movie's production year; `movie_info_idx`
//!   "top 250 rank" rows concentrate on old, low-id movies; cast notes
//!   correlate with role ids.  Histogram+independence estimators mis-estimate
//!   conjunctions of such predicates, which is exactly the gap the learned
//!   model closes.
//! * **Realistic strings** — notes like `"(co-production)"`, `"(presents)"`,
//!   `"(as Metro-Goldwyn-Mayer Pictures)"`, `"(2006) (USA) (TV)"`, info
//!   strings like `"top 250 rank"`, date-like strings `"(2002-06-29)"`, so
//!   the rule-based substring extraction of Section 5 has material to work on.

use crate::database::Database;
use crate::sample::TableSample;
use crate::schema::Schema;
use crate::table::{Column, Table};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of the synthetic data generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of rows in the `title` table; fact tables scale off this.
    pub n_titles: usize,
    /// Width of the per-table sample bitmaps.
    pub sample_size: usize,
    /// RNG seed; the same seed always produces the same database.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { n_titles: 20_000, sample_size: 256, seed: 42 }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        GeneratorConfig { n_titles: 800, sample_size: 64, seed: 7 }
    }
}

/// Exact zipf sampler over ranks `0..n`: rank `r` is drawn with probability
/// `(r + 1)^-s / H_{n,s}` where `H_{n,s}` is the generalized harmonic number
/// (the truncated-zeta normalizer).
///
/// Sampling is inverse-CDF over the precomputed cumulative weights (binary
/// search, `O(log n)` per draw after an `O(n)` build), so the distribution is
/// exact — unlike the power-transform approximation this replaces, which
/// piled ~11% of the mass on rank 0 regardless of `n` (a true zipf(0.7)
/// over 2000 ranks puts ~3% there).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[r]` = P(rank <= r); `cdf[n - 1]` is exactly 1.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precompute the cumulative distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        // Guard against rounding drift: the final bucket must absorb u -> 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Exact probability of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Exact cumulative probability P(rank <= r).
    pub fn cdf(&self, r: usize) -> f64 {
        self.cdf[r]
    }

    /// Draw one rank in `0..n` (consumes exactly one uniform variate).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

/// One-off zipf draw over `0..n`: rank r with probability proportional to
/// `1 / (r + 1)^s`.  Hot loops should build a [`ZipfSampler`] once instead.
pub fn zipf(rng: &mut impl Rng, n: usize, s: f64) -> usize {
    ZipfSampler::new(n, s).sample(rng)
}

const ADJECTIVES: &[&str] = &[
    "Dark", "Silent", "Golden", "Broken", "Hidden", "Lost", "Red", "Blue", "Last", "First", "Iron", "Wild", "Secret",
    "Ancient", "Burning", "Frozen", "Sacred", "Savage", "Gentle", "Electric",
];
const NOUNS: &[&str] = &[
    "Empire", "River", "Night", "Dream", "Garden", "Storm", "Mountain", "Shadow", "Crown", "Forest", "Ocean", "City",
    "Letter", "Promise", "Journey", "Return", "Legacy", "Echo", "Horizon", "Winter",
];
const COMPANY_WORDS: &[&str] = &[
    "Universal",
    "Paramount",
    "Columbia",
    "Warner",
    "Gaumont",
    "Pathe",
    "Toho",
    "Shochiku",
    "Mosfilm",
    "Cinecitta",
    "Nordisk",
    "Svensk",
    "Ealing",
    "Hammer",
    "Amblin",
    "Pixelight",
    "Northstar",
    "Bluebird",
    "Redwood",
    "Silverline",
];
const COUNTRIES: &[&str] = &["[us]", "[gb]", "[fr]", "[de]", "[jp]", "[it]", "[in]", "[ca]", "[es]", "[se]"];
const KEYWORD_STEMS: &[&str] = &[
    "murder",
    "love",
    "revenge",
    "family",
    "war",
    "robbery",
    "friendship",
    "betrayal",
    "escape",
    "investigation",
    "journey",
    "conspiracy",
    "survival",
    "redemption",
    "rivalry",
    "kidnapping",
    "heist",
    "trial",
    "rescue",
    "wedding",
];
const INFO_TYPES: &[&str] = &[
    "top 250 rank",
    "bottom 10 rank",
    "rating",
    "votes",
    "genres",
    "countries",
    "release dates",
    "languages",
    "runtimes",
    "budget",
    "gross",
    "color info",
    "certificates",
    "sound mix",
    "camera",
    "tech info",
    "locations",
    "taglines",
    "plot",
    "quotes",
];
const COMPANY_KINDS: &[&str] =
    &["production companies", "distributors", "special effects companies", "miscellaneous companies"];
const GENRES: &[&str] =
    &["Drama", "Comedy", "Thriller", "Action", "Romance", "Documentary", "Horror", "Adventure", "Crime", "Animation"];
const CAST_NOTES: &[&str] = &["(voice)", "(uncredited)", "(archive footage)", "(as himself)", "(singing voice)", ""];

/// Generate the full synthetic database.
pub fn generate_imdb(config: GeneratorConfig) -> Database {
    let schema = Schema::imdb();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut tables: HashMap<String, Table> = HashMap::new();

    // --- Dimension tables -------------------------------------------------
    let info_type = Table::new(
        schema.table("info_type").expect("schema").clone(),
        vec![
            Column::Int((1..=INFO_TYPES.len() as i64).collect()),
            Column::Str(INFO_TYPES.iter().map(|s| s.to_string()).collect()),
        ],
    );
    let company_type = Table::new(
        schema.table("company_type").expect("schema").clone(),
        vec![
            Column::Int((1..=COMPANY_KINDS.len() as i64).collect()),
            Column::Str(COMPANY_KINDS.iter().map(|s| s.to_string()).collect()),
        ],
    );

    let n_keywords = (config.n_titles / 40).clamp(40, 2000);
    let keyword = Table::new(
        schema.table("keyword").expect("schema").clone(),
        vec![
            Column::Int((1..=n_keywords as i64).collect()),
            Column::Str(
                (0..n_keywords)
                    .map(|i| {
                        let stem = KEYWORD_STEMS[i % KEYWORD_STEMS.len()];
                        let noun = NOUNS[(i / KEYWORD_STEMS.len()) % NOUNS.len()].to_lowercase();
                        format!("{stem}-{noun}")
                    })
                    .collect(),
            ),
        ],
    );

    let n_companies = (config.n_titles / 20).clamp(50, 4000);
    let country_dist = ZipfSampler::new(COUNTRIES.len(), 0.8);
    let company_name = Table::new(
        schema.table("company_name").expect("schema").clone(),
        vec![
            Column::Int((1..=n_companies as i64).collect()),
            Column::Str(
                (0..n_companies)
                    .map(|i| {
                        let word = COMPANY_WORDS[i % COMPANY_WORDS.len()];
                        let noun = NOUNS[(i * 7) % NOUNS.len()];
                        format!("{word} {noun} Pictures")
                    })
                    .collect(),
            ),
            Column::Str((0..n_companies).map(|_| COUNTRIES[country_dist.sample(&mut rng)].to_string()).collect()),
        ],
    );

    // --- title -------------------------------------------------------------
    let n_titles = config.n_titles;
    let mut t_ids = Vec::with_capacity(n_titles);
    let mut t_titles = Vec::with_capacity(n_titles);
    let mut t_kind = Vec::with_capacity(n_titles);
    let mut t_year = Vec::with_capacity(n_titles);
    let mut t_season = Vec::with_capacity(n_titles);
    let mut t_episode = Vec::with_capacity(n_titles);
    let kind_dist = ZipfSampler::new(7, 1.1);
    for i in 0..n_titles {
        t_ids.push(i as i64 + 1);
        let adj = ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())];
        let noun = NOUNS[rng.gen_range(0..NOUNS.len())];
        t_titles.push(format!("{adj} {noun} {}", i % 997));
        // kind 1 = movie (common), 7 = tv episode (rare-ish), skewed.
        let kind = 1 + kind_dist.sample(&mut rng) as i64;
        t_kind.push(kind);
        // Years skewed toward recent decades; older for low ids (correlation
        // with id that the "top 250 rank" generation below exploits).
        let base: i64 = if i < n_titles / 5 { 1930 } else { 1960 };
        let spread: i64 = 60;
        let year = base + (spread as f64 * (1.0 - (1.0 - rng.gen_range(0.0f64..1.0)).powf(2.0))) as i64;
        t_year.push(year.min(2019));
        if kind >= 6 {
            t_season.push(rng.gen_range(1..=15));
            t_episode.push(rng.gen_range(1..=40));
        } else {
            t_season.push(0);
            t_episode.push(0);
        }
    }
    let title = Table::new(
        schema.table("title").expect("schema").clone(),
        vec![
            Column::Int(t_ids),
            Column::Str(t_titles),
            Column::Int(t_kind),
            Column::Int(t_year.clone()),
            Column::Int(t_season),
            Column::Int(t_episode),
        ],
    );

    // --- movie_companies ----------------------------------------------------
    let n_mc = n_titles * 2;
    let mut mc_id = Vec::with_capacity(n_mc);
    let mut mc_movie = Vec::with_capacity(n_mc);
    let mut mc_company = Vec::with_capacity(n_mc);
    let mut mc_type = Vec::with_capacity(n_mc);
    let mut mc_note = Vec::with_capacity(n_mc);
    let mc_movie_dist = ZipfSampler::new(n_titles, 0.7);
    let mc_company_dist = ZipfSampler::new(n_companies, 0.9);
    let mc_type_dist = ZipfSampler::new(4, 0.9);
    let mc_country_dist = ZipfSampler::new(5, 0.8);
    for i in 0..n_mc {
        mc_id.push(i as i64 + 1);
        let movie = mc_movie_dist.sample(&mut rng);
        mc_movie.push(movie as i64 + 1);
        mc_company.push(mc_company_dist.sample(&mut rng) as i64 + 1);
        let year = t_year[movie];
        // Company type correlates with year: older movies are mostly
        // production companies, newer ones have more distributors.
        let ct = if year < 1970 {
            if rng.gen_bool(0.75) {
                1
            } else {
                1 + rng.gen_range(1i64..4)
            }
        } else if rng.gen_bool(0.45) {
            2
        } else {
            1 + mc_type_dist.sample(&mut rng) as i64
        };
        mc_type.push(ct);
        // Note patterns correlated with both company type and year.
        let note = if ct == 1 {
            // Co-productions exist across all eras but are far more common
            // for recent titles (the year correlation the model can learn).
            let coprod_p = if year >= 2000 { 0.35 } else { 0.05 };
            if rng.gen_bool(coprod_p) {
                "(co-production)".to_string()
            } else if rng.gen_bool(0.3) {
                "(presents)".to_string()
            } else if rng.gen_bool(0.1) {
                "(as Metro-Goldwyn-Mayer Pictures)".to_string()
            } else {
                format!("(in association with {})", COMPANY_WORDS[rng.gen_range(0..COMPANY_WORDS.len())])
            }
        } else {
            let country = ["USA", "UK", "France", "Japan", "worldwide"][mc_country_dist.sample(&mut rng)];
            let medium = if rng.gen_bool(0.5) { "TV" } else { "theatrical" };
            format!("({year}) ({country}) ({medium})")
        };
        mc_note.push(note);
    }
    let movie_companies = Table::new(
        schema.table("movie_companies").expect("schema").clone(),
        vec![
            Column::Int(mc_id),
            Column::Int(mc_movie),
            Column::Int(mc_company),
            Column::Int(mc_type),
            Column::Str(mc_note),
        ],
    );

    // --- movie_info_idx -----------------------------------------------------
    let n_mii = (n_titles as f64 * 1.5) as usize;
    let mut mii_id = Vec::with_capacity(n_mii);
    let mut mii_movie = Vec::with_capacity(n_mii);
    let mut mii_type = Vec::with_capacity(n_mii);
    let mut mii_info = Vec::with_capacity(n_mii);
    let mii_movie_dist = ZipfSampler::new(n_titles, 0.6);
    let mii_type_dist = ZipfSampler::new(INFO_TYPES.len() - 3, 0.8);
    let votes_dist = ZipfSampler::new(200_000, 0.9);
    for i in 0..n_mii {
        mii_id.push(i as i64 + 1);
        let movie = mii_movie_dist.sample(&mut rng);
        mii_movie.push(movie as i64 + 1);
        let year = t_year[movie];
        // "top 250 rank" rows (info_type 1) concentrate on old movies.
        let ty = if year < 1975 && rng.gen_bool(0.18) {
            1
        } else if rng.gen_bool(0.02) {
            2
        } else {
            3 + mii_type_dist.sample(&mut rng) as i64
        };
        mii_type.push(ty);
        let info = match ty {
            1 => format!("top {} rank", 250 - (movie % 240)),
            2 => format!("bottom {} rank", 10 + (movie % 90)),
            3 => format!("{:.1}", 4.0 + (movie % 60) as f64 / 10.0),
            4 => format!("{}", 100 + votes_dist.sample(&mut rng)),
            _ => GENRES[movie % GENRES.len()].to_string(),
        };
        mii_info.push(info);
    }
    let movie_info_idx = Table::new(
        schema.table("movie_info_idx").expect("schema").clone(),
        vec![Column::Int(mii_id), Column::Int(mii_movie), Column::Int(mii_type), Column::Str(mii_info)],
    );

    // --- movie_info ----------------------------------------------------------
    let n_mi = n_titles * 3;
    let mut mi_id = Vec::with_capacity(n_mi);
    let mut mi_movie = Vec::with_capacity(n_mi);
    let mut mi_type = Vec::with_capacity(n_mi);
    let mut mi_info = Vec::with_capacity(n_mi);
    let mi_movie_dist = ZipfSampler::new(n_titles, 0.5);
    let mi_type_dist = ZipfSampler::new(INFO_TYPES.len() - 5, 0.7);
    let mi_country_dist = ZipfSampler::new(7, 0.8);
    let mi_language_dist = ZipfSampler::new(6, 0.9);
    for i in 0..n_mi {
        mi_id.push(i as i64 + 1);
        let movie = mi_movie_dist.sample(&mut rng);
        mi_movie.push(movie as i64 + 1);
        let year = t_year[movie];
        let ty = 5 + mi_type_dist.sample(&mut rng) as i64;
        mi_type.push(ty);
        let info = match ty {
            5 => GENRES[(movie + i) % GENRES.len()].to_string(),
            6 => ["USA", "UK", "France", "Germany", "Japan", "Italy", "India"][mi_country_dist.sample(&mut rng)]
                .to_string(),
            7 => format!("({}-{:02}-{:02})", year, 1 + (movie % 12), 1 + (i % 28)),
            8 => ["English", "French", "German", "Japanese", "Italian", "Hindi"][mi_language_dist.sample(&mut rng)]
                .to_string(),
            9 => format!("{} min", 60 + (movie % 120)),
            _ => format!("{} {}", ADJECTIVES[i % ADJECTIVES.len()], GENRES[movie % GENRES.len()]),
        };
        mi_info.push(info);
    }
    let movie_info = Table::new(
        schema.table("movie_info").expect("schema").clone(),
        vec![Column::Int(mi_id), Column::Int(mi_movie), Column::Int(mi_type), Column::Str(mi_info)],
    );

    // --- movie_keyword -------------------------------------------------------
    let n_mk = n_titles * 2;
    let mut mk_id = Vec::with_capacity(n_mk);
    let mut mk_movie = Vec::with_capacity(n_mk);
    let mut mk_keyword = Vec::with_capacity(n_mk);
    let mk_movie_dist = ZipfSampler::new(n_titles, 0.7);
    let mk_keyword_dist = ZipfSampler::new(n_keywords, 0.9);
    for i in 0..n_mk {
        mk_id.push(i as i64 + 1);
        let movie = mk_movie_dist.sample(&mut rng);
        mk_movie.push(movie as i64 + 1);
        // Keyword correlated with the movie id so keyword joins are skewed.
        let kw = if rng.gen_bool(0.5) { movie % n_keywords } else { mk_keyword_dist.sample(&mut rng) };
        mk_keyword.push(kw as i64 + 1);
    }
    let movie_keyword = Table::new(
        schema.table("movie_keyword").expect("schema").clone(),
        vec![Column::Int(mk_id), Column::Int(mk_movie), Column::Int(mk_keyword)],
    );

    // --- cast_info -------------------------------------------------------------
    let n_ci = n_titles * 3;
    let mut ci_id = Vec::with_capacity(n_ci);
    let mut ci_movie = Vec::with_capacity(n_ci);
    let mut ci_person = Vec::with_capacity(n_ci);
    let mut ci_role = Vec::with_capacity(n_ci);
    let mut ci_note = Vec::with_capacity(n_ci);
    let n_people = (n_titles / 2).max(100);
    let ci_movie_dist = ZipfSampler::new(n_titles, 0.6);
    let ci_person_dist = ZipfSampler::new(n_people, 0.9);
    let ci_role_dist = ZipfSampler::new(11, 1.0);
    for i in 0..n_ci {
        ci_id.push(i as i64 + 1);
        let movie = ci_movie_dist.sample(&mut rng);
        ci_movie.push(movie as i64 + 1);
        ci_person.push(ci_person_dist.sample(&mut rng) as i64 + 1);
        let role = 1 + ci_role_dist.sample(&mut rng) as i64;
        ci_role.push(role);
        let note = if role >= 8 {
            CAST_NOTES[rng.gen_range(0..2usize)]
        } else {
            CAST_NOTES[rng.gen_range(0..CAST_NOTES.len())]
        };
        ci_note.push(note.to_string());
    }
    let cast_info = Table::new(
        schema.table("cast_info").expect("schema").clone(),
        vec![
            Column::Int(ci_id),
            Column::Int(ci_movie),
            Column::Int(ci_person),
            Column::Int(ci_role),
            Column::Str(ci_note),
        ],
    );

    for t in [
        title,
        movie_companies,
        movie_info_idx,
        movie_info,
        movie_keyword,
        cast_info,
        company_type,
        info_type,
        keyword,
        company_name,
    ] {
        tables.insert(t.name().to_string(), t);
    }

    // --- samples ---------------------------------------------------------------
    // Iterate in schema order, NOT HashMap order: the per-table sample draws
    // share one RNG stream, so a nondeterministic iteration order would give
    // every table a different sample on every call despite the fixed seed —
    // and sample bitmaps (hence encoded features and checkpointed models)
    // would not be reproducible across processes.
    let mut samples = HashMap::new();
    for def in &schema.tables {
        let table = &tables[&def.name];
        samples.insert(def.name.clone(), TableSample::uniform(&def.name, table.n_rows(), config.sample_size, &mut rng));
    }

    Database::new(schema, tables, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = generate_imdb(GeneratorConfig::tiny());
        let b = generate_imdb(GeneratorConfig::tiny());
        let ta = a.table("movie_companies").expect("exists");
        let tb = b.table("movie_companies").expect("exists");
        assert_eq!(ta.n_rows(), tb.n_rows());
        for row in [0, 5, 100] {
            assert_eq!(ta.str("note", row), tb.str("note", row));
        }
        // Samples must be reproducible too (they feed the sample-bitmap
        // features, and through them every checkpointed model).
        for def in &a.schema().tables {
            assert_eq!(
                a.sample(&def.name).map(|s| s.rows().to_vec()),
                b.sample(&def.name).map(|s| s.rows().to_vec()),
                "sample of {} is not deterministic",
                def.name
            );
        }
    }

    #[test]
    fn row_counts_scale_with_titles() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let titles = db.table("title").expect("exists").n_rows();
        assert_eq!(titles, 800);
        assert_eq!(db.table("movie_companies").expect("exists").n_rows(), titles * 2);
        assert_eq!(db.table("cast_info").expect("exists").n_rows(), titles * 3);
    }

    #[test]
    fn foreign_keys_reference_existing_titles() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let titles = db.table("title").expect("exists").n_rows() as i64;
        let mc = db.table("movie_companies").expect("exists");
        for row in 0..mc.n_rows() {
            let movie = mc.int("movie_id", row).expect("int");
            assert!(movie >= 1 && movie <= titles);
        }
    }

    #[test]
    fn note_strings_contain_paper_patterns() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let mc = db.table("movie_companies").expect("exists");
        let mut saw_coprod = false;
        let mut saw_presents = false;
        let mut saw_paren_year = false;
        for row in 0..mc.n_rows() {
            let note = mc.str("note", row).expect("str");
            saw_coprod |= note.contains("(co-production)");
            saw_presents |= note.contains("(presents)");
            saw_paren_year |= note.contains("(TV)");
        }
        assert!(saw_coprod && saw_presents && saw_paren_year);
    }

    #[test]
    fn top_rank_correlates_with_old_movies() {
        // The correlation the learned model should pick up: info_type 1 rows
        // ("top N rank") belong mostly to pre-1975 movies.
        let db = generate_imdb(GeneratorConfig::tiny());
        let mii = db.table("movie_info_idx").expect("exists");
        let title = db.table("title").expect("exists");
        let mut old = 0usize;
        let mut total = 0usize;
        for row in 0..mii.n_rows() {
            if mii.int("info_type_id", row) == Some(1) {
                let movie = mii.int("movie_id", row).expect("int") as usize - 1;
                let year = title.int("production_year", movie).expect("int");
                total += 1;
                if year < 1975 {
                    old += 1;
                }
            }
        }
        assert!(total > 0, "no top-rank rows generated");
        assert!(old * 10 >= total * 9, "top-rank rows are not concentrated on old movies: {old}/{total}");
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dist = ZipfSampler::new(100, 0.9);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!(v < 100);
            counts[v] += 1;
        }
        // Exact zipf(0.9) over 100 ranks: pmf(0) ~ 15.6%, pmf(50) ~ 0.45% —
        // strongly skewed but, unlike the old approximation, not degenerate.
        assert!(counts[0] > counts[50].max(1) * 3, "zipf not skewed: {} vs {}", counts[0], counts[50]);
        let mass0 = counts[0] as f64 / 10_000.0;
        assert!(
            mass0 < dist.pmf(0) * 1.5 && mass0 > dist.pmf(0) / 1.5,
            "hottest-rank mass {mass0:.4} not within 1.5x of exact pmf {:.4}",
            dist.pmf(0)
        );
        // One-off helper draws from the same distribution.
        let v = zipf(&mut rng, 100, 0.9);
        assert!(v < 100);
    }

    #[test]
    fn zipf_hottest_key_mass_matches_analytic_truncated_zeta() {
        // The regression this PR fixes: the old power-transform approximation
        // put ~11% of the mass on rank 0 for zipf(0.7) over 2000 ranks, while
        // the exact truncated-zeta PMF puts ~3% there.
        let dist = ZipfSampler::new(2000, 0.7);
        let h: f64 = (1..=2000).map(|r| (r as f64).powf(-0.7)).sum();
        let analytic = 1.0 / h;
        assert!(analytic > 0.02 && analytic < 0.045, "analytic hottest-key mass should be ~3%, got {analytic:.4}");
        assert!((dist.pmf(0) - analytic).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let draws = 100_000usize;
        let hottest = (0..draws).filter(|_| dist.sample(&mut rng) == 0).count();
        let mass = hottest as f64 / draws as f64;
        assert!(
            mass < analytic * 1.5 && mass > analytic / 1.5,
            "sampled hottest-key mass {mass:.4} not within 1.5x of analytic {analytic:.4}"
        );
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        for &(n, s) in &[(1usize, 0.7f64), (2, 0.0), (50, 0.5), (2000, 1.2)] {
            let dist = ZipfSampler::new(n, s);
            assert_eq!(dist.n(), n);
            let mut prev = 0.0;
            for r in 0..n {
                assert!(dist.pmf(r) > 0.0);
                assert!(dist.cdf(r) >= prev);
                prev = dist.cdf(r);
            }
            assert_eq!(dist.cdf(n - 1), 1.0);
        }
    }

    #[test]
    fn samples_exist_for_every_table() {
        let db = generate_imdb(GeneratorConfig::tiny());
        for t in &db.schema().tables {
            let s = db.sample(&t.name).expect("sample exists");
            assert!(s.rows().len() <= 64);
        }
    }

    #[test]
    fn fact_table_fanout_is_not_degenerate() {
        // With the corrected skew the hottest movie's fan-out in a fact table
        // must track the zipf(0.7) PMF instead of swallowing ~11% of all rows.
        let db = generate_imdb(GeneratorConfig::tiny());
        let n_titles = db.table_rows("title");
        let mc = db.table("movie_companies").expect("exists");
        let mut counts = vec![0usize; n_titles];
        for row in 0..mc.n_rows() {
            counts[mc.int("movie_id", row).expect("int") as usize - 1] += 1;
        }
        let hottest = *counts.iter().max().expect("non-empty");
        let mass = hottest as f64 / mc.n_rows() as f64;
        let analytic = ZipfSampler::new(n_titles, 0.7).pmf(0);
        assert!(
            mass < analytic * 1.5,
            "hottest movie holds {mass:.4} of movie_companies; exact zipf(0.7) puts only {analytic:.4}"
        );
        // Still skewed: the hottest movie's fan-out dwarfs the median movie's.
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] >= counts[n_titles / 2].max(1) * 4, "fan-out skew lost: {counts:?}");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    proptest! {
        /// Chi-square goodness-of-fit of the sampler against the exact
        /// truncated-zeta CDF: ranks are bucketed into ~8 equal-mass bins by
        /// CDF midpoint, and the statistic over the sampled counts must stay
        /// in the bulk of the chi^2 distribution (the sampler is an exact
        /// inverse-CDF, so only sampling noise contributes).
        #[test]
        fn zipf_matches_exact_truncated_zeta_cdf(n in 10usize..400, s in 0.3f64..1.4, seed in 0u64..10_000) {
            let dist = ZipfSampler::new(n, s);
            let k = 8usize;
            let draws = 5_000usize;
            let mut bin_of = vec![0usize; n];
            let mut expected = vec![0f64; k];
            for (r, bin) in bin_of.iter_mut().enumerate() {
                let midpoint = dist.cdf(r) - dist.pmf(r) / 2.0;
                let b = ((midpoint * k as f64) as usize).min(k - 1);
                *bin = b;
                expected[b] += dist.pmf(r) * draws as f64;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut observed = vec![0f64; k];
            for _ in 0..draws {
                observed[bin_of[dist.sample(&mut rng)]] += 1.0;
            }
            let chi2: f64 = expected
                .iter()
                .zip(&observed)
                .filter(|(e, _)| **e > 0.0)
                .map(|(e, o)| (o - e) * (o - e) / e)
                .sum();
            // At most k-1 = 7 degrees of freedom; chi^2_7 has mean 7 and the
            // 99.99% quantile ~29.9.  40 leaves a wide margin over 128 cases.
            prop_assert!(chi2 < 40.0, "chi-square {} rejects the exact-CDF fit (n={}, s={})", chi2, n, s);
        }
    }
}
