//! Deterministic synthetic IMDB-like data generator.
//!
//! The generator's goal is not to look like IMDB row-for-row but to exhibit
//! the statistical structure the paper's estimator exploits and that breaks
//! traditional estimators:
//!
//! * **Skew** — movies receive companies / info rows / keywords with a
//!   Zipf-like fan-out, production years are biased toward recent decades.
//! * **Cross-column correlation** — a movie-company `note` pattern depends on
//!   the company type *and* on the movie's production year; `movie_info_idx`
//!   "top 250 rank" rows concentrate on old, low-id movies; cast notes
//!   correlate with role ids.  Histogram+independence estimators mis-estimate
//!   conjunctions of such predicates, which is exactly the gap the learned
//!   model closes.
//! * **Realistic strings** — notes like `"(co-production)"`, `"(presents)"`,
//!   `"(as Metro-Goldwyn-Mayer Pictures)"`, `"(2006) (USA) (TV)"`, info
//!   strings like `"top 250 rank"`, date-like strings `"(2002-06-29)"`, so
//!   the rule-based substring extraction of Section 5 has material to work on.

use crate::database::Database;
use crate::sample::TableSample;
use crate::schema::Schema;
use crate::table::{Column, Table};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of the synthetic data generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of rows in the `title` table; fact tables scale off this.
    pub n_titles: usize,
    /// Width of the per-table sample bitmaps.
    pub sample_size: usize,
    /// RNG seed; the same seed always produces the same database.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { n_titles: 20_000, sample_size: 256, seed: 42 }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        GeneratorConfig { n_titles: 800, sample_size: 64, seed: 7 }
    }
}

/// Zipf-like draw over `0..n`: rank r with probability proportional to
/// `1 / (r + 1)^s`.
fn zipf(rng: &mut impl Rng, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    // Inverse-CDF by rejection-free approximation: draw u, map through the
    // truncated harmonic distribution using a power transform.  Accurate
    // enough for generating skew; exactness is not required.
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let x = (1.0 - u).powf(1.0 / (1.0 - s.min(0.99)));
    let idx = ((1.0 / x) - 1.0).round() as usize;
    idx.min(n - 1)
}

const ADJECTIVES: &[&str] = &[
    "Dark", "Silent", "Golden", "Broken", "Hidden", "Lost", "Red", "Blue", "Last", "First", "Iron", "Wild", "Secret",
    "Ancient", "Burning", "Frozen", "Sacred", "Savage", "Gentle", "Electric",
];
const NOUNS: &[&str] = &[
    "Empire", "River", "Night", "Dream", "Garden", "Storm", "Mountain", "Shadow", "Crown", "Forest", "Ocean", "City",
    "Letter", "Promise", "Journey", "Return", "Legacy", "Echo", "Horizon", "Winter",
];
const COMPANY_WORDS: &[&str] = &[
    "Universal",
    "Paramount",
    "Columbia",
    "Warner",
    "Gaumont",
    "Pathe",
    "Toho",
    "Shochiku",
    "Mosfilm",
    "Cinecitta",
    "Nordisk",
    "Svensk",
    "Ealing",
    "Hammer",
    "Amblin",
    "Pixelight",
    "Northstar",
    "Bluebird",
    "Redwood",
    "Silverline",
];
const COUNTRIES: &[&str] = &["[us]", "[gb]", "[fr]", "[de]", "[jp]", "[it]", "[in]", "[ca]", "[es]", "[se]"];
const KEYWORD_STEMS: &[&str] = &[
    "murder",
    "love",
    "revenge",
    "family",
    "war",
    "robbery",
    "friendship",
    "betrayal",
    "escape",
    "investigation",
    "journey",
    "conspiracy",
    "survival",
    "redemption",
    "rivalry",
    "kidnapping",
    "heist",
    "trial",
    "rescue",
    "wedding",
];
const INFO_TYPES: &[&str] = &[
    "top 250 rank",
    "bottom 10 rank",
    "rating",
    "votes",
    "genres",
    "countries",
    "release dates",
    "languages",
    "runtimes",
    "budget",
    "gross",
    "color info",
    "certificates",
    "sound mix",
    "camera",
    "tech info",
    "locations",
    "taglines",
    "plot",
    "quotes",
];
const COMPANY_KINDS: &[&str] =
    &["production companies", "distributors", "special effects companies", "miscellaneous companies"];
const GENRES: &[&str] =
    &["Drama", "Comedy", "Thriller", "Action", "Romance", "Documentary", "Horror", "Adventure", "Crime", "Animation"];
const CAST_NOTES: &[&str] = &["(voice)", "(uncredited)", "(archive footage)", "(as himself)", "(singing voice)", ""];

/// Generate the full synthetic database.
pub fn generate_imdb(config: GeneratorConfig) -> Database {
    let schema = Schema::imdb();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut tables: HashMap<String, Table> = HashMap::new();

    // --- Dimension tables -------------------------------------------------
    let info_type = Table::new(
        schema.table("info_type").expect("schema").clone(),
        vec![
            Column::Int((1..=INFO_TYPES.len() as i64).collect()),
            Column::Str(INFO_TYPES.iter().map(|s| s.to_string()).collect()),
        ],
    );
    let company_type = Table::new(
        schema.table("company_type").expect("schema").clone(),
        vec![
            Column::Int((1..=COMPANY_KINDS.len() as i64).collect()),
            Column::Str(COMPANY_KINDS.iter().map(|s| s.to_string()).collect()),
        ],
    );

    let n_keywords = (config.n_titles / 40).clamp(40, 2000);
    let keyword = Table::new(
        schema.table("keyword").expect("schema").clone(),
        vec![
            Column::Int((1..=n_keywords as i64).collect()),
            Column::Str(
                (0..n_keywords)
                    .map(|i| {
                        let stem = KEYWORD_STEMS[i % KEYWORD_STEMS.len()];
                        let noun = NOUNS[(i / KEYWORD_STEMS.len()) % NOUNS.len()].to_lowercase();
                        format!("{stem}-{noun}")
                    })
                    .collect(),
            ),
        ],
    );

    let n_companies = (config.n_titles / 20).clamp(50, 4000);
    let company_name = Table::new(
        schema.table("company_name").expect("schema").clone(),
        vec![
            Column::Int((1..=n_companies as i64).collect()),
            Column::Str(
                (0..n_companies)
                    .map(|i| {
                        let word = COMPANY_WORDS[i % COMPANY_WORDS.len()];
                        let noun = NOUNS[(i * 7) % NOUNS.len()];
                        format!("{word} {noun} Pictures")
                    })
                    .collect(),
            ),
            Column::Str(
                (0..n_companies).map(|_| COUNTRIES[zipf(&mut rng, COUNTRIES.len(), 0.8)].to_string()).collect(),
            ),
        ],
    );

    // --- title -------------------------------------------------------------
    let n_titles = config.n_titles;
    let mut t_ids = Vec::with_capacity(n_titles);
    let mut t_titles = Vec::with_capacity(n_titles);
    let mut t_kind = Vec::with_capacity(n_titles);
    let mut t_year = Vec::with_capacity(n_titles);
    let mut t_season = Vec::with_capacity(n_titles);
    let mut t_episode = Vec::with_capacity(n_titles);
    for i in 0..n_titles {
        t_ids.push(i as i64 + 1);
        let adj = ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())];
        let noun = NOUNS[rng.gen_range(0..NOUNS.len())];
        t_titles.push(format!("{adj} {noun} {}", i % 997));
        // kind 1 = movie (common), 7 = tv episode (rare-ish), skewed.
        let kind = 1 + zipf(&mut rng, 7, 1.1) as i64;
        t_kind.push(kind);
        // Years skewed toward recent decades; older for low ids (correlation
        // with id that the "top 250 rank" generation below exploits).
        let base: i64 = if i < n_titles / 5 { 1930 } else { 1960 };
        let spread: i64 = 60;
        let year = base + (spread as f64 * (1.0 - (1.0 - rng.gen_range(0.0f64..1.0)).powf(2.0))) as i64;
        t_year.push(year.min(2019));
        if kind >= 6 {
            t_season.push(rng.gen_range(1..=15));
            t_episode.push(rng.gen_range(1..=40));
        } else {
            t_season.push(0);
            t_episode.push(0);
        }
    }
    let title = Table::new(
        schema.table("title").expect("schema").clone(),
        vec![
            Column::Int(t_ids),
            Column::Str(t_titles),
            Column::Int(t_kind),
            Column::Int(t_year.clone()),
            Column::Int(t_season),
            Column::Int(t_episode),
        ],
    );

    // --- movie_companies ----------------------------------------------------
    let n_mc = n_titles * 2;
    let mut mc_id = Vec::with_capacity(n_mc);
    let mut mc_movie = Vec::with_capacity(n_mc);
    let mut mc_company = Vec::with_capacity(n_mc);
    let mut mc_type = Vec::with_capacity(n_mc);
    let mut mc_note = Vec::with_capacity(n_mc);
    for i in 0..n_mc {
        mc_id.push(i as i64 + 1);
        let movie = zipf(&mut rng, n_titles, 0.7);
        mc_movie.push(movie as i64 + 1);
        mc_company.push(zipf(&mut rng, n_companies, 0.9) as i64 + 1);
        let year = t_year[movie];
        // Company type correlates with year: older movies are mostly
        // production companies, newer ones have more distributors.
        let ct = if year < 1970 {
            if rng.gen_bool(0.75) {
                1
            } else {
                1 + rng.gen_range(1i64..4)
            }
        } else if rng.gen_bool(0.45) {
            2
        } else {
            1 + zipf(&mut rng, 4, 0.9) as i64
        };
        mc_type.push(ct);
        // Note patterns correlated with both company type and year.
        let note = if ct == 1 {
            // Co-productions exist across all eras but are far more common
            // for recent titles (the year correlation the model can learn).
            let coprod_p = if year >= 2000 { 0.35 } else { 0.05 };
            if rng.gen_bool(coprod_p) {
                "(co-production)".to_string()
            } else if rng.gen_bool(0.3) {
                "(presents)".to_string()
            } else if rng.gen_bool(0.1) {
                "(as Metro-Goldwyn-Mayer Pictures)".to_string()
            } else {
                format!("(in association with {})", COMPANY_WORDS[rng.gen_range(0..COMPANY_WORDS.len())])
            }
        } else {
            let country = ["USA", "UK", "France", "Japan", "worldwide"][zipf(&mut rng, 5, 0.8)];
            let medium = if rng.gen_bool(0.5) { "TV" } else { "theatrical" };
            format!("({year}) ({country}) ({medium})")
        };
        mc_note.push(note);
    }
    let movie_companies = Table::new(
        schema.table("movie_companies").expect("schema").clone(),
        vec![
            Column::Int(mc_id),
            Column::Int(mc_movie),
            Column::Int(mc_company),
            Column::Int(mc_type),
            Column::Str(mc_note),
        ],
    );

    // --- movie_info_idx -----------------------------------------------------
    let n_mii = (n_titles as f64 * 1.5) as usize;
    let mut mii_id = Vec::with_capacity(n_mii);
    let mut mii_movie = Vec::with_capacity(n_mii);
    let mut mii_type = Vec::with_capacity(n_mii);
    let mut mii_info = Vec::with_capacity(n_mii);
    for i in 0..n_mii {
        mii_id.push(i as i64 + 1);
        let movie = zipf(&mut rng, n_titles, 0.6);
        mii_movie.push(movie as i64 + 1);
        let year = t_year[movie];
        // "top 250 rank" rows (info_type 1) concentrate on old movies.
        let ty = if year < 1975 && rng.gen_bool(0.18) {
            1
        } else if rng.gen_bool(0.02) {
            2
        } else {
            3 + zipf(&mut rng, INFO_TYPES.len() - 3, 0.8) as i64
        };
        mii_type.push(ty);
        let info = match ty {
            1 => format!("top {} rank", 250 - (movie % 240)),
            2 => format!("bottom {} rank", 10 + (movie % 90)),
            3 => format!("{:.1}", 4.0 + (movie % 60) as f64 / 10.0),
            4 => format!("{}", 100 + zipf(&mut rng, 200_000, 0.9)),
            _ => GENRES[movie % GENRES.len()].to_string(),
        };
        mii_info.push(info);
    }
    let movie_info_idx = Table::new(
        schema.table("movie_info_idx").expect("schema").clone(),
        vec![Column::Int(mii_id), Column::Int(mii_movie), Column::Int(mii_type), Column::Str(mii_info)],
    );

    // --- movie_info ----------------------------------------------------------
    let n_mi = n_titles * 3;
    let mut mi_id = Vec::with_capacity(n_mi);
    let mut mi_movie = Vec::with_capacity(n_mi);
    let mut mi_type = Vec::with_capacity(n_mi);
    let mut mi_info = Vec::with_capacity(n_mi);
    for i in 0..n_mi {
        mi_id.push(i as i64 + 1);
        let movie = zipf(&mut rng, n_titles, 0.5);
        mi_movie.push(movie as i64 + 1);
        let year = t_year[movie];
        let ty = 5 + zipf(&mut rng, INFO_TYPES.len() - 5, 0.7) as i64;
        mi_type.push(ty);
        let info = match ty {
            5 => GENRES[(movie + i) % GENRES.len()].to_string(),
            6 => ["USA", "UK", "France", "Germany", "Japan", "Italy", "India"][zipf(&mut rng, 7, 0.8)].to_string(),
            7 => format!("({}-{:02}-{:02})", year, 1 + (movie % 12), 1 + (i % 28)),
            8 => ["English", "French", "German", "Japanese", "Italian", "Hindi"][zipf(&mut rng, 6, 0.9)].to_string(),
            9 => format!("{} min", 60 + (movie % 120)),
            _ => format!("{} {}", ADJECTIVES[i % ADJECTIVES.len()], GENRES[movie % GENRES.len()]),
        };
        mi_info.push(info);
    }
    let movie_info = Table::new(
        schema.table("movie_info").expect("schema").clone(),
        vec![Column::Int(mi_id), Column::Int(mi_movie), Column::Int(mi_type), Column::Str(mi_info)],
    );

    // --- movie_keyword -------------------------------------------------------
    let n_mk = n_titles * 2;
    let mut mk_id = Vec::with_capacity(n_mk);
    let mut mk_movie = Vec::with_capacity(n_mk);
    let mut mk_keyword = Vec::with_capacity(n_mk);
    for i in 0..n_mk {
        mk_id.push(i as i64 + 1);
        let movie = zipf(&mut rng, n_titles, 0.7);
        mk_movie.push(movie as i64 + 1);
        // Keyword correlated with the movie id so keyword joins are skewed.
        let kw = if rng.gen_bool(0.5) { movie % n_keywords } else { zipf(&mut rng, n_keywords, 0.9) };
        mk_keyword.push(kw as i64 + 1);
    }
    let movie_keyword = Table::new(
        schema.table("movie_keyword").expect("schema").clone(),
        vec![Column::Int(mk_id), Column::Int(mk_movie), Column::Int(mk_keyword)],
    );

    // --- cast_info -------------------------------------------------------------
    let n_ci = n_titles * 3;
    let mut ci_id = Vec::with_capacity(n_ci);
    let mut ci_movie = Vec::with_capacity(n_ci);
    let mut ci_person = Vec::with_capacity(n_ci);
    let mut ci_role = Vec::with_capacity(n_ci);
    let mut ci_note = Vec::with_capacity(n_ci);
    let n_people = (n_titles / 2).max(100);
    for i in 0..n_ci {
        ci_id.push(i as i64 + 1);
        let movie = zipf(&mut rng, n_titles, 0.6);
        ci_movie.push(movie as i64 + 1);
        ci_person.push(zipf(&mut rng, n_people, 0.9) as i64 + 1);
        let role = 1 + zipf(&mut rng, 11, 1.0) as i64;
        ci_role.push(role);
        let note = if role >= 8 {
            CAST_NOTES[rng.gen_range(0..2usize)]
        } else {
            CAST_NOTES[rng.gen_range(0..CAST_NOTES.len())]
        };
        ci_note.push(note.to_string());
    }
    let cast_info = Table::new(
        schema.table("cast_info").expect("schema").clone(),
        vec![
            Column::Int(ci_id),
            Column::Int(ci_movie),
            Column::Int(ci_person),
            Column::Int(ci_role),
            Column::Str(ci_note),
        ],
    );

    for t in [
        title,
        movie_companies,
        movie_info_idx,
        movie_info,
        movie_keyword,
        cast_info,
        company_type,
        info_type,
        keyword,
        company_name,
    ] {
        tables.insert(t.name().to_string(), t);
    }

    // --- samples ---------------------------------------------------------------
    let mut samples = HashMap::new();
    for (name, table) in &tables {
        samples.insert(name.clone(), TableSample::uniform(name, table.n_rows(), config.sample_size, &mut rng));
    }

    Database::new(schema, tables, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = generate_imdb(GeneratorConfig::tiny());
        let b = generate_imdb(GeneratorConfig::tiny());
        let ta = a.table("movie_companies").expect("exists");
        let tb = b.table("movie_companies").expect("exists");
        assert_eq!(ta.n_rows(), tb.n_rows());
        for row in [0, 5, 100] {
            assert_eq!(ta.str("note", row), tb.str("note", row));
        }
    }

    #[test]
    fn row_counts_scale_with_titles() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let titles = db.table("title").expect("exists").n_rows();
        assert_eq!(titles, 800);
        assert_eq!(db.table("movie_companies").expect("exists").n_rows(), titles * 2);
        assert_eq!(db.table("cast_info").expect("exists").n_rows(), titles * 3);
    }

    #[test]
    fn foreign_keys_reference_existing_titles() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let titles = db.table("title").expect("exists").n_rows() as i64;
        let mc = db.table("movie_companies").expect("exists");
        for row in 0..mc.n_rows() {
            let movie = mc.int("movie_id", row).expect("int");
            assert!(movie >= 1 && movie <= titles);
        }
    }

    #[test]
    fn note_strings_contain_paper_patterns() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let mc = db.table("movie_companies").expect("exists");
        let mut saw_coprod = false;
        let mut saw_presents = false;
        let mut saw_paren_year = false;
        for row in 0..mc.n_rows() {
            let note = mc.str("note", row).expect("str");
            saw_coprod |= note.contains("(co-production)");
            saw_presents |= note.contains("(presents)");
            saw_paren_year |= note.contains("(TV)");
        }
        assert!(saw_coprod && saw_presents && saw_paren_year);
    }

    #[test]
    fn top_rank_correlates_with_old_movies() {
        // The correlation the learned model should pick up: info_type 1 rows
        // ("top N rank") belong mostly to pre-1975 movies.
        let db = generate_imdb(GeneratorConfig::tiny());
        let mii = db.table("movie_info_idx").expect("exists");
        let title = db.table("title").expect("exists");
        let mut old = 0usize;
        let mut total = 0usize;
        for row in 0..mii.n_rows() {
            if mii.int("info_type_id", row) == Some(1) {
                let movie = mii.int("movie_id", row).expect("int") as usize - 1;
                let year = title.int("production_year", movie).expect("int");
                total += 1;
                if year < 1975 {
                    old += 1;
                }
            }
        }
        assert!(total > 0, "no top-rank rows generated");
        assert!(old * 10 >= total * 9, "top-rank rows are not concentrated on old movies: {old}/{total}");
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            let v = zipf(&mut rng, 100, 0.9);
            assert!(v < 100);
            counts[v] += 1;
        }
        assert!(counts[0] > counts[50].max(1) * 3, "zipf not skewed: {} vs {}", counts[0], counts[50]);
    }

    #[test]
    fn samples_exist_for_every_table() {
        let db = generate_imdb(GeneratorConfig::tiny());
        for t in &db.schema().tables {
            let s = db.sample(&t.name).expect("sample exists");
            assert!(s.rows().len() <= 64);
        }
    }
}
