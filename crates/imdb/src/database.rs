//! The in-memory database: schema + tables + samples + key indexes.

use crate::index::HashIndex;
use crate::sample::TableSample;
use crate::schema::Schema;
use crate::table::Table;
use std::collections::HashMap;

/// A fully materialized synthetic database.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Schema,
    tables: HashMap<String, Table>,
    samples: HashMap<String, TableSample>,
    indexes: HashMap<(String, String), HashIndex>,
}

impl Database {
    /// Assemble a database and build hash indexes on all indexed columns.
    pub fn new(schema: Schema, tables: HashMap<String, Table>, samples: HashMap<String, TableSample>) -> Self {
        let mut indexes = HashMap::new();
        for t in &schema.tables {
            if let Some(table) = tables.get(&t.name) {
                for c in &t.columns {
                    if c.indexed {
                        if let Some(idx) = HashIndex::build(table, &c.name) {
                            indexes.insert((t.name.clone(), c.name.clone()), idx);
                        }
                    }
                }
            }
        }
        Database { schema, tables, samples, indexes }
    }

    /// The database schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// The sampled rows of a table.
    pub fn sample(&self, table: &str) -> Option<&TableSample> {
        self.samples.get(table)
    }

    /// The hash index on `(table, column)`, if one was built.
    pub fn index(&self, table: &str, column: &str) -> Option<&HashIndex> {
        self.indexes.get(&(table.to_string(), column.to_string()))
    }

    /// Number of rows in a table (0 when the table is unknown).
    pub fn table_rows(&self, name: &str) -> usize {
        self.tables.get(name).map(|t| t.n_rows()).unwrap_or(0)
    }

    /// Names of all materialized tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.schema.tables.iter().map(|t| t.name.as_str()).filter(|n| self.tables.contains_key(*n)).collect()
    }
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::*;
    use crate::generator::{generate_imdb, GeneratorConfig};

    #[test]
    fn indexes_built_for_pk_and_fk_columns() {
        let db = generate_imdb(GeneratorConfig::tiny());
        assert!(db.index("title", "id").is_some());
        assert!(db.index("movie_companies", "movie_id").is_some());
        assert!(db.index("movie_companies", "note").is_none());
    }

    #[test]
    fn pk_index_is_unique() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let idx = db.index("title", "id").expect("index exists");
        assert_eq!(idx.distinct_keys(), db.table_rows("title"));
        assert!((idx.avg_rows_per_key() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_names_cover_schema() {
        let db = generate_imdb(GeneratorConfig::tiny());
        assert_eq!(db.table_names().len(), db.schema().tables.len());
        assert_eq!(db.table_rows("does_not_exist"), 0);
    }

    #[test]
    fn fk_index_lookup_matches_scan() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let mc = db.table("movie_companies").expect("exists");
        let idx = db.index("movie_companies", "movie_id").expect("index exists");
        let key = mc.int("movie_id", 17).expect("int");
        let via_index = idx.lookup(key);
        let via_scan: Vec<usize> = (0..mc.n_rows()).filter(|&r| mc.int("movie_id", r) == Some(key)).collect();
        assert_eq!(via_index, via_scan.as_slice());
    }
}
