//! Per-table row samples.
//!
//! The sample-bitmap feature of Section 4.1 is a fixed-size 0/1 vector over a
//! set of sampled rows of the table: bit `i` is 1 when sample row `i`
//! satisfies the node's predicate.  This module stores which rows were
//! sampled; the bitmap itself is produced by the feature extractor, which
//! evaluates the node predicate over these rows.

use rand::seq::SliceRandom;
use rand::Rng;

/// The sampled row indices of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSample {
    table: String,
    rows: Vec<usize>,
    /// The fixed bitmap width; when a table has fewer rows than the width the
    /// remaining bits are always zero (padding).
    width: usize,
}

impl TableSample {
    /// Sample `width` rows uniformly (without replacement) from a table with
    /// `n_rows` rows.
    pub fn uniform(table: &str, n_rows: usize, width: usize, rng: &mut impl Rng) -> Self {
        let mut all: Vec<usize> = (0..n_rows).collect();
        all.shuffle(rng);
        all.truncate(width);
        all.sort_unstable();
        TableSample { table: table.to_string(), rows: all, width }
    }

    /// Table this sample belongs to.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The sampled row indices (at most `width` of them).
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// The fixed bitmap width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Build the 0/1 bitmap for a predicate evaluated over the sampled rows.
    /// `matches(row)` is called once per sampled row.
    pub fn bitmap(&self, mut matches: impl FnMut(usize) -> bool) -> Vec<f32> {
        let mut bits = vec![0.0; self.width];
        for (i, &row) in self.rows.iter().enumerate() {
            if matches(row) {
                bits[i] = 1.0;
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sample_size_is_bounded_by_width() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = TableSample::uniform("title", 1000, 64, &mut rng);
        assert_eq!(s.rows().len(), 64);
        assert_eq!(s.width(), 64);
        assert!(s.rows().iter().all(|&r| r < 1000));
    }

    #[test]
    fn small_table_keeps_all_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = TableSample::uniform("company_type", 4, 64, &mut rng);
        assert_eq!(s.rows().len(), 4);
        assert_eq!(s.bitmap(|_| true).len(), 64);
    }

    #[test]
    fn bitmap_marks_matching_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = TableSample::uniform("t", 10, 10, &mut rng);
        let bits = s.bitmap(|row| row % 2 == 0);
        let ones = bits.iter().filter(|&&b| b == 1.0).count();
        assert_eq!(ones, 5);
    }

    #[test]
    fn no_duplicate_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = TableSample::uniform("t", 500, 128, &mut rng);
        let mut rows = s.rows().to_vec();
        rows.dedup();
        assert_eq!(rows.len(), 128);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(TableSample::uniform("t", 100, 16, &mut a), TableSample::uniform("t", 100, 16, &mut b));
    }
}
