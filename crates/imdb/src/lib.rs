//! Synthetic IMDB-schema dataset used as the evaluation substrate.
//!
//! The paper evaluates on the real IMDB dataset (22 tables joined on PK/FK)
//! with the JOB workloads.  The real data is not redistributable, so this
//! crate generates a *deterministic synthetic* database with the same schema
//! shape and — crucially — the properties the paper relies on: skewed value
//! distributions, correlations *across* columns and tables (which break the
//! attribute-value-independence assumption of traditional estimators), and
//! realistic string columns (company notes, info strings, dates) that the
//! string-embedding component of the estimator (Section 5) can learn from.
//!
//! The crate provides:
//! * [`schema`] — table/column definitions and the PK-FK join graph,
//! * [`table`]/[`database`] — in-memory columnar storage,
//! * [`generator`] — the deterministic synthetic data generator,
//! * [`sample`] — per-table row samples (the source of the sample-bitmap
//!   feature of Section 4.1),
//! * [`index`] — hash indexes on key columns used by the plan executor.

pub mod database;
pub mod generator;
pub mod index;
pub mod sample;
pub mod schema;
pub mod table;
pub mod value;

pub use database::Database;
pub use generator::{generate_imdb, GeneratorConfig, ZipfSampler};
pub use index::HashIndex;
pub use sample::TableSample;
pub use schema::{ColumnDef, ColumnType, JoinEdge, Schema, TableDef};
pub use table::{Column, Table};
pub use value::{Value, ValueRef};
