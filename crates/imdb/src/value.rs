//! Scalar values stored in the synthetic database.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single cell value: either a 64-bit integer or a string.
///
/// The IMDB schema used by the paper only needs these two types (years, ids,
/// counts are integers; titles, notes, info strings are text).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Str(String),
}

impl Value {
    /// Integer content, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// String content, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// A floating-point view of the value (string values have no numeric view).
    pub fn as_f64(&self) -> Option<f64> {
        self.as_int().map(|v| v as f64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A borrowed view of a [`Value`]: integers are copied, strings are borrowed
/// from the column storage.  Hash/Eq agree with [`Value`], so it can key hash
/// tables (join build sides, group-by-key count maps) without cloning the
/// underlying `String` per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueRef<'a> {
    Int(i64),
    Str(&'a str),
}

impl ValueRef<'_> {
    /// An owned copy of the value.
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Int(v) => Value::Int(v),
            ValueRef::Str(s) => Value::Str(s.to_string()),
        }
    }
}

impl Value {
    /// A borrowed view of this value.
    pub fn as_value_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Int(v) => ValueRef::Int(*v),
            Value::Str(s) => ValueRef::Str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from("abc").as_int(), None);
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("x").to_string(), "'x'");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
    }

    #[test]
    fn value_ref_round_trips_and_hashes_like_value() {
        use std::collections::HashMap;
        let owned = Value::from("abc");
        let r = owned.as_value_ref();
        assert_eq!(r, ValueRef::Str("abc"));
        assert_eq!(r.to_value(), owned);
        assert_eq!(Value::Int(7).as_value_ref(), ValueRef::Int(7));
        // Borrowed keys behave like owned ones in a hash map.
        let mut m: HashMap<ValueRef<'_>, usize> = HashMap::new();
        m.insert(ValueRef::Str("abc"), 1);
        m.insert(ValueRef::Int(7), 2);
        assert_eq!(m.get(&owned.as_value_ref()), Some(&1));
        assert_eq!(m.get(&ValueRef::Int(7)), Some(&2));
        assert_eq!(m.get(&ValueRef::Str("other")), None);
    }
}
