//! Ground-truth plan execution.
//!
//! Executes a physical plan against the in-memory [`Database`], producing the
//! *true* per-node output cardinality and the *true* cumulative cost (the
//! cost-model formulas of [`crate::cost`] applied to the true cardinalities).
//! The resulting annotated plan is exactly the training triple of the paper:
//! `<plan, real cost, real cardinality>` for the root and for every sub-plan.

use crate::cost::CostModel;
use imdb::{Database, Value};
use query::{PhysicalOp, PlanNode, Predicate};
use std::collections::HashMap;

/// An intermediate relation: the ordered list of base tables it binds plus
/// one row of base-table row indices per output tuple.
#[derive(Debug, Clone)]
struct Relation {
    tables: Vec<String>,
    rows: Vec<Vec<usize>>,
}

impl Relation {
    fn table_pos(&self, table: &str) -> Option<usize> {
        self.tables.iter().position(|t| t == table)
    }
}

/// Result of executing a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionResult {
    /// Output cardinality of the root node.
    pub cardinality: f64,
    /// Cumulative cost of the root node (work units).
    pub cost: f64,
}

/// Execute `plan` against `db`, annotating every node's
/// `annotations.true_cardinality` and `annotations.true_cost` in place, and
/// return the root's result.
pub fn execute_plan(db: &Database, plan: &mut PlanNode, model: &CostModel) -> ExecutionResult {
    let (rel, cost) = exec_node(db, plan, model);
    ExecutionResult { cardinality: rel.rows.len() as f64, cost }
}

/// Execute a batch of independent plans in parallel, annotating each in
/// place; results come back in input order.  This is the ground-truth
/// counterpart of the estimator's level-batched inference: workload
/// generation and the bench harnesses execute whole query batches through it.
pub fn execute_plans(db: &Database, plans: &mut [PlanNode], model: &CostModel) -> Vec<ExecutionResult> {
    use rayon::prelude::*;
    plans.par_iter_mut().map(|plan| execute_plan(db, plan, model)).collect()
}

fn filter_rows(db: &Database, table: &str, predicate: Option<&Predicate>) -> Vec<usize> {
    let t = match db.table(table) {
        Some(t) => t,
        None => return Vec::new(),
    };
    match predicate {
        None => (0..t.n_rows()).collect(),
        Some(p) => (0..t.n_rows()).filter(|&r| p.matches_row(t, r)).collect(),
    }
}

/// Join-key value of one output tuple of a relation.
fn key_of(db: &Database, rel: &Relation, row: &[usize], table: &str, column: &str) -> Option<Value> {
    let pos = rel.table_pos(table)?;
    db.table(table).and_then(|t| t.value(column, row[pos]))
}

fn exec_node(db: &Database, node: &mut PlanNode, model: &CostModel) -> (Relation, f64) {
    let (relation, cost): (Relation, f64) = match &node.op {
        PhysicalOp::SeqScan { table, predicate } => {
            let rows = filter_rows(db, table, predicate.as_ref());
            let n_atoms = predicate.as_ref().map(|p| p.num_atoms()).unwrap_or(0);
            let cost = model.seq_scan(db.table_rows(table) as f64, n_atoms);
            (Relation { tables: vec![table.clone()], rows: rows.into_iter().map(|r| vec![r]).collect() }, cost)
        }
        PhysicalOp::IndexScan { table, index_column, predicate } => {
            // An index scan driven by an equality predicate on the index
            // column; residual predicate atoms are applied afterwards.
            let table_rows = db.table_rows(table) as f64;
            let rows = filter_rows(db, table, predicate.as_ref());
            let n_atoms = predicate.as_ref().map(|p| p.num_atoms()).unwrap_or(0);
            let _ = index_column;
            let cost = model.index_scan(table_rows, rows.len() as f64, n_atoms);
            (Relation { tables: vec![table.clone()], rows: rows.into_iter().map(|r| vec![r]).collect() }, cost)
        }
        PhysicalOp::HashJoin { condition }
        | PhysicalOp::MergeJoin { condition }
        | PhysicalOp::NestedLoopJoin { condition } => {
            let condition = condition.clone();
            let op_kind = node.op.clone();
            assert_eq!(node.children.len(), 2, "join node must have two children");
            let mut right = node.children.pop().expect("right child");
            let mut left = node.children.pop().expect("left child");
            let (left_rel, left_cost) = exec_node(db, &mut left, model);
            let (right_rel, right_cost) = exec_node(db, &mut right, model);
            node.children.push(left);
            node.children.push(right);

            // Determine which side holds which join column.
            let (left_tab, left_col, right_tab, right_col) = if left_rel.table_pos(&condition.left_table).is_some() {
                (
                    condition.left_table.clone(),
                    condition.left_column.clone(),
                    condition.right_table.clone(),
                    condition.right_column.clone(),
                )
            } else {
                (
                    condition.right_table.clone(),
                    condition.right_column.clone(),
                    condition.left_table.clone(),
                    condition.left_column.clone(),
                )
            };

            // Build a hash table on the left child, probe with the right.
            let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, row) in left_rel.rows.iter().enumerate() {
                if let Some(k) = key_of(db, &left_rel, row, &left_tab, &left_col) {
                    build.entry(k).or_default().push(i);
                }
            }
            let mut out_rows = Vec::new();
            for row in &right_rel.rows {
                if let Some(k) = key_of(db, &right_rel, row, &right_tab, &right_col) {
                    if let Some(matches) = build.get(&k) {
                        for &li in matches {
                            let mut combined = left_rel.rows[li].clone();
                            combined.extend_from_slice(row);
                            out_rows.push(combined);
                        }
                    }
                }
            }
            let mut tables = left_rel.tables.clone();
            tables.extend(right_rel.tables.iter().cloned());

            let l = left_rel.rows.len() as f64;
            let r = right_rel.rows.len() as f64;
            let o = out_rows.len() as f64;
            let own_cost = match op_kind {
                PhysicalOp::HashJoin { .. } => model.hash_join(l, r, o),
                PhysicalOp::MergeJoin { .. } => model.merge_join(l, r, o),
                PhysicalOp::NestedLoopJoin { .. } => {
                    // The inner (right) child is re-scanned per outer row; its
                    // rescan cost is its own cost.
                    model.nested_loop(l, right_cost, o)
                }
                _ => unreachable!("join arm"),
            };
            (Relation { tables, rows: out_rows }, left_cost + right_cost + own_cost)
        }
        PhysicalOp::Sort { .. } => {
            assert_eq!(node.children.len(), 1, "sort node must have one child");
            let (rel, child_cost) = exec_node(db, &mut node.children[0], model);
            let own = model.sort(rel.rows.len() as f64);
            (rel, child_cost + own)
        }
        PhysicalOp::Aggregate { hash, group_columns } => {
            let hash = *hash;
            let n_groups_cols = group_columns.len();
            assert_eq!(node.children.len(), 1, "aggregate node must have one child");
            let (rel, child_cost) = exec_node(db, &mut node.children[0], model);
            let input = rel.rows.len() as f64;
            // Without GROUP BY the aggregate produces a single row; the
            // workloads only use global MIN/MAX/COUNT aggregates.
            let out_rows = if n_groups_cols == 0 { 1.0 } else { input.max(1.0).sqrt().ceil() };
            let own = model.aggregate(input, out_rows, hash);
            let out = Relation { tables: rel.tables, rows: vec![vec![0; 0]; out_rows as usize] };
            (out, child_cost + own)
        }
    };

    node.annotations.true_cardinality = Some(relation.rows.len() as f64);
    node.annotations.true_cost = Some(cost);
    (relation, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    #[test]
    fn seq_scan_without_predicate_returns_all_rows() {
        let db = db();
        let mut plan = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None });
        let res = execute_plan(&db, &mut plan, &CostModel::default());
        assert_eq!(res.cardinality, db.table_rows("title") as f64);
        assert!(plan.annotations.true_cost.expect("cost set") > 0.0);
    }

    #[test]
    fn seq_scan_with_predicate_filters() {
        let db = db();
        let pred = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2010.0));
        let mut plan = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: Some(pred.clone()) });
        let res = execute_plan(&db, &mut plan, &CostModel::default());
        let title = db.table("title").expect("exists");
        let expected = (0..title.n_rows()).filter(|&r| pred.matches_row(title, r)).count();
        assert_eq!(res.cardinality, expected as f64);
        assert!(res.cardinality < db.table_rows("title") as f64);
    }

    #[test]
    fn join_cardinality_matches_manual_count() {
        let db = db();
        let scan_ct = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "company_type".into(),
            predicate: Some(Predicate::atom(
                "company_type",
                "kind",
                CompareOp::Eq,
                Operand::Str("production companies".into()),
            )),
        });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin {
                condition: JoinPredicate::new("movie_companies", "company_type_id", "company_type", "id"),
            },
            vec![scan_ct, scan_mc],
        );
        let res = execute_plan(&db, &mut join, &CostModel::default());

        // Manual count: movie_companies rows with company_type_id == 1.
        let mc = db.table("movie_companies").expect("exists");
        let expected = (0..mc.n_rows()).filter(|&r| mc.int("company_type_id", r) == Some(1)).count();
        assert_eq!(res.cardinality, expected as f64);
        // Children annotated too.
        assert!(join.children[0].annotations.true_cardinality.is_some());
        assert!(join.children[1].annotations.true_cardinality.is_some());
    }

    #[test]
    fn join_operators_agree_on_cardinality_but_not_cost() {
        let db = db();
        let mk_plan = |op: fn(JoinPredicate) -> PhysicalOp| {
            PlanNode::inner(
                op(JoinPredicate::new("movie_info_idx", "movie_id", "title", "id")),
                vec![
                    PlanNode::leaf(PhysicalOp::SeqScan {
                        table: "title".into(),
                        predicate: Some(Predicate::atom(
                            "title",
                            "production_year",
                            CompareOp::Lt,
                            Operand::Num(1950.0),
                        )),
                    }),
                    PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_info_idx".into(), predicate: None }),
                ],
            )
        };
        let model = CostModel::default();
        let mut hash = mk_plan(|c| PhysicalOp::HashJoin { condition: c });
        let mut merge = mk_plan(|c| PhysicalOp::MergeJoin { condition: c });
        let mut nl = mk_plan(|c| PhysicalOp::NestedLoopJoin { condition: c });
        let rh = execute_plan(&db, &mut hash, &model);
        let rm = execute_plan(&db, &mut merge, &model);
        let rn = execute_plan(&db, &mut nl, &model);
        assert_eq!(rh.cardinality, rm.cardinality);
        assert_eq!(rh.cardinality, rn.cardinality);
        assert!(rh.cost < rn.cost, "hash join should be cheaper than nested loop here");
    }

    #[test]
    fn aggregate_produces_single_row() {
        let db = db();
        let scan = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut agg = PlanNode::inner(PhysicalOp::Aggregate { hash: false, group_columns: vec![] }, vec![scan]);
        let res = execute_plan(&db, &mut agg, &CostModel::default());
        assert_eq!(res.cardinality, 1.0);
        // Cumulative cost grows from child to parent.
        let child_cost = agg.children[0].annotations.true_cost.expect("cost");
        assert!(res.cost > child_cost);
    }

    #[test]
    fn empty_result_propagates_zero_cardinality() {
        let db = db();
        let pred = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(3000.0));
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: Some(pred) });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        let res = execute_plan(&db, &mut join, &CostModel::default());
        assert_eq!(res.cardinality, 0.0);
        assert!(res.cost > 0.0);
    }

    #[test]
    fn three_way_join_executes() {
        let db = db();
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "title".into(),
            predicate: Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2005.0))),
        });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let scan_mii = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_info_idx".into(), predicate: None });
        let join1 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        let mut join2 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_info_idx", "movie_id", "title", "id") },
            vec![join1, scan_mii],
        );
        let res = execute_plan(&db, &mut join2, &CostModel::default());
        assert!(res.cardinality > 0.0);
        assert!(res.cost > 0.0);
        // Every node is annotated.
        let mut count = 0;
        join2.visit_preorder(&mut |n, _| {
            assert!(n.annotations.true_cardinality.is_some());
            assert!(n.annotations.true_cost.is_some());
            count += 1;
        });
        assert_eq!(count, 5);
    }
}
