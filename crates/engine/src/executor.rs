//! Ground-truth plan execution.
//!
//! Executes a physical plan against the in-memory [`Database`], producing the
//! *true* per-node output cardinality and the *true* cumulative cost (the
//! cost-model formulas of [`crate::cost`] applied to the true cardinalities).
//! The resulting annotated plan is exactly the training triple of the paper:
//! `<plan, real cost, real cardinality>` for the root and for every sub-plan.
//!
//! Two execution modes share the scan layer but differ in how joins produce
//! cardinalities:
//!
//! * [`ExecMode::Count`] (the default) never materializes join tuples.  An
//!   intermediate relation is kept *factorized*: one selection vector per
//!   base table plus the join conditions applied so far.  Each join node's
//!   cardinality is obtained by propagating per-key match counts up the
//!   (acyclic) join tree — `O(Σ |selected rows|)` per node instead of
//!   `O(|output tuples|)`, so skewed star joins whose outputs reach `1e8+`
//!   tuples count in milliseconds with zero tuple storage.
//! * [`ExecMode::Materialize`] materializes every intermediate tuple in
//!   columnar form (one row-id vector per bound base table) and is kept as
//!   the brute-force oracle the counting path is tested against.
//!
//! Counting handles every plan the [`crate::planner`] emits (distinct base
//! tables, binary equi-joins).  Pathological hand-built shapes (the same
//! table scanned twice, non-binary joins) fall back to the materializing
//! path, so `execute_plan` is exact for every input.

use crate::cost::CostModel;
use imdb::{Database, ValueRef};
use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
use std::collections::{HashMap, HashSet};

/// How plan execution produces intermediate cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Propagate per-key match counts; never materialize join tuples.
    #[default]
    Count,
    /// Materialize every intermediate tuple (columnar row-id vectors).
    Materialize,
}

/// Result of executing a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionResult {
    /// Output cardinality of the root node.
    pub cardinality: f64,
    /// Cumulative cost of the root node (work units).
    pub cost: f64,
}

/// Execute `plan` against `db`, annotating every node's
/// `annotations.true_cardinality` and `annotations.true_cost` in place, and
/// return the root's result.  Uses the counting mode (with a materializing
/// fallback for plan shapes the counting executor does not model).
pub fn execute_plan(db: &Database, plan: &mut PlanNode, model: &CostModel) -> ExecutionResult {
    execute_plan_mode(db, plan, model, ExecMode::Count)
}

/// Execute `plan` in an explicit [`ExecMode`].
pub fn execute_plan_mode(db: &Database, plan: &mut PlanNode, model: &CostModel, mode: ExecMode) -> ExecutionResult {
    match mode {
        ExecMode::Count if plan_is_countable(plan) => {
            let (rel, cost) = exec_count(db, plan, model);
            ExecutionResult { cardinality: rel.card, cost }
        }
        _ => {
            let (rel, cost) = exec_materialize(db, plan, model);
            ExecutionResult { cardinality: rel.len as f64, cost }
        }
    }
}

/// Execute a batch of independent plans in parallel, annotating each in
/// place; results come back in input order.  This is the ground-truth
/// counterpart of the estimator's level-batched inference: workload
/// generation and the bench harnesses execute whole query batches through it.
pub fn execute_plans(db: &Database, plans: &mut [PlanNode], model: &CostModel) -> Vec<ExecutionResult> {
    execute_plans_mode(db, plans, model, ExecMode::Count)
}

/// Batch execution in an explicit [`ExecMode`].
pub fn execute_plans_mode(
    db: &Database,
    plans: &mut [PlanNode],
    model: &CostModel,
    mode: ExecMode,
) -> Vec<ExecutionResult> {
    use rayon::prelude::*;
    plans.par_iter_mut().map(|plan| execute_plan_mode(db, plan, model, mode)).collect()
}

// --------------------------------------------------------------------------
// Scan layer (shared by both modes)
// --------------------------------------------------------------------------

/// Row ids of `table` matching `predicate` via a full filter scan.
fn filter_rows(db: &Database, table: &str, predicate: Option<&Predicate>) -> Vec<usize> {
    let t = match db.table(table) {
        Some(t) => t,
        None => return Vec::new(),
    };
    match predicate {
        None => (0..t.n_rows()).collect(),
        Some(p) => (0..t.n_rows()).filter(|&r| p.matches_row(t, r)).collect(),
    }
}

/// Split a predicate into its top-level AND conjuncts.
fn conjuncts(p: &Predicate) -> Vec<&Predicate> {
    fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a Predicate>) {
        match p {
            Predicate::And(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            _ => out.push(p),
        }
    }
    let mut out = Vec::new();
    walk(p, &mut out);
    out
}

/// The integer key of an equality conjunct `table.column = <int>` usable to
/// probe the hash index on `column`.  Non-integral constants cannot match an
/// integer column, so they are left to the filter path.
fn index_probe_key(conjunct: &Predicate, table: &str, column: &str) -> Option<i64> {
    let Predicate::Atom(a) = conjunct else { return None };
    if a.table != table || a.column != column || a.op != CompareOp::Eq {
        return None;
    }
    let Operand::Num(v) = &a.operand else { return None };
    // Out-of-range constants must not saturate into a real key: the filter
    // path would reject every row, so the index path must too.
    (v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64).then_some(*v as i64)
}

/// Row ids for an index scan: an equality conjunct on the index column
/// probes the hash index, and the remaining conjuncts are applied row-wise.
/// Falls back to a full filter scan when no usable equality conjunct exists
/// (e.g. the equality sits under an OR) — the result set is identical either
/// way, only the access path differs.
fn index_scan_rows(db: &Database, table: &str, index_column: &str, predicate: Option<&Predicate>) -> Vec<usize> {
    let (Some(t), Some(index), Some(pred)) = (db.table(table), db.index(table, index_column), predicate) else {
        return filter_rows(db, table, predicate);
    };
    let parts = conjuncts(pred);
    let Some(pos) = parts.iter().position(|c| index_probe_key(c, table, index_column).is_some()) else {
        return filter_rows(db, table, predicate);
    };
    let key = index_probe_key(parts[pos], table, index_column).expect("position checked");
    let residual: Vec<&Predicate> = parts.iter().enumerate().filter(|&(i, _)| i != pos).map(|(_, p)| *p).collect();
    index.lookup(key).iter().copied().filter(|&r| residual.iter().all(|p| p.matches_row(t, r))).collect()
}

/// Execute a scan operator: `(table, surviving rows, cost)`.
fn exec_scan(db: &Database, op: &PhysicalOp, model: &CostModel) -> (String, Vec<usize>, f64) {
    match op {
        PhysicalOp::SeqScan { table, predicate } => {
            let rows = filter_rows(db, table, predicate.as_ref());
            let n_atoms = predicate.as_ref().map(|p| p.num_atoms()).unwrap_or(0);
            let cost = model.seq_scan(db.table_rows(table) as f64, n_atoms);
            (table.clone(), rows, cost)
        }
        PhysicalOp::IndexScan { table, index_column, predicate } => {
            let rows = index_scan_rows(db, table, index_column, predicate.as_ref());
            let n_atoms = predicate.as_ref().map(|p| p.num_atoms()).unwrap_or(0);
            let cost = model.index_scan(db.table_rows(table) as f64, rows.len() as f64, n_atoms);
            (table.clone(), rows, cost)
        }
        _ => unreachable!("exec_scan called on a non-scan operator"),
    }
}

/// Join cost shared by both modes; `right_cost` is the right child's
/// cumulative cost (the rescan cost of a nested loop's inner side).
fn join_cost(model: &CostModel, op: &PhysicalOp, l: f64, r: f64, o: f64, right_cost: f64) -> f64 {
    match op {
        PhysicalOp::HashJoin { .. } => model.hash_join(l, r, o),
        PhysicalOp::MergeJoin { .. } => model.merge_join(l, r, o),
        PhysicalOp::NestedLoopJoin { .. } => model.nested_loop(l, right_cost, o),
        _ => unreachable!("join_cost called on a non-join operator"),
    }
}

// --------------------------------------------------------------------------
// Counting mode
// --------------------------------------------------------------------------

/// A factorized intermediate relation: per-table selection vectors plus the
/// join conditions applied so far.  `card` is the exact tuple count of the
/// (never materialized) join result.
struct CountRel {
    tables: Vec<String>,
    sel: Vec<Vec<usize>>,
    /// Resolved join edges: `(table idx, column, table idx, column)`.
    edges: Vec<(usize, String, usize, String)>,
    card: f64,
    /// Set when a join condition could not be resolved against the bound
    /// tables (or an aggregate erased the tuple structure); every enclosing
    /// join then produces zero rows, mirroring the materializing executor.
    dead: bool,
}

/// True when the counting executor models this plan exactly: scans are
/// leaves over pairwise-distinct base tables, joins are binary, and
/// Sort/Aggregate are unary.  Join conditions connecting two disjoint
/// subtrees then always form a tree over the base tables, which is what the
/// per-key count propagation requires.
fn plan_is_countable(plan: &PlanNode) -> bool {
    fn walk<'a>(node: &'a PlanNode, seen: &mut HashSet<&'a str>) -> bool {
        match &node.op {
            PhysicalOp::SeqScan { table, .. } | PhysicalOp::IndexScan { table, .. } => {
                node.children.is_empty() && seen.insert(table.as_str())
            }
            PhysicalOp::HashJoin { .. } | PhysicalOp::MergeJoin { .. } | PhysicalOp::NestedLoopJoin { .. } => {
                node.children.len() == 2 && node.children.iter().all(|c| walk(c, seen))
            }
            PhysicalOp::Sort { .. } | PhysicalOp::Aggregate { .. } => {
                node.children.len() == 1 && walk(&node.children[0], seen)
            }
        }
    }
    walk(plan, &mut HashSet::new())
}

/// Exact cardinality of the factorized relation by per-key match-count
/// propagation over its join tree (Yannakakis-style counting): the tree is
/// rooted at table 0; every table folds each child into its per-row weights
/// through a `key -> matched-count` map; the total is the sum of the root's
/// weights.  Runs in `O(Σ |selected rows|)` — independent of the (possibly
/// enormous) number of join tuples.
fn count_join_tree(db: &Database, rel: &CountRel) -> f64 {
    let n = rel.tables.len();
    if n == 0 {
        return 0.0;
    }
    // Adjacency: (neighbor, own column, neighbor column).
    let mut adj: Vec<Vec<(usize, &str, &str)>> = vec![Vec::new(); n];
    for (ti, ci, tj, cj) in &rel.edges {
        adj[*ti].push((*tj, ci.as_str(), cj.as_str()));
        adj[*tj].push((*ti, cj.as_str(), ci.as_str()));
    }
    // BFS order from the root; the relation is connected by construction
    // (every join merges two disjoint subtrees with one edge).
    let mut order = Vec::with_capacity(n);
    let mut parent = vec![usize::MAX; n];
    let mut visited = vec![false; n];
    visited[0] = true;
    order.push(0);
    let mut head = 0;
    while head < order.len() {
        let t = order[head];
        head += 1;
        for &(nb, _, _) in &adj[t] {
            if !visited[nb] {
                visited[nb] = true;
                parent[nb] = t;
                order.push(nb);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "factorized relation must be connected");
    if order.len() < n {
        return 0.0;
    }
    // Upward sweep, children before parents.
    let mut weights: Vec<Option<Vec<f64>>> = rel.sel.iter().map(|s| Some(vec![1.0; s.len()])).collect();
    for &t in order.iter().rev() {
        for &(child, own_col, child_col) in &adj[t] {
            if parent[child] != t {
                continue;
            }
            let w_child = weights[child].take().expect("each child folds exactly once");
            let mut by_key: HashMap<ValueRef<'_>, f64> = HashMap::new();
            if let Some(col) = db.table(&rel.tables[child]).and_then(|tb| tb.column_by_name(child_col)) {
                for (i, &row) in rel.sel[child].iter().enumerate() {
                    *by_key.entry(col.value_ref(row)).or_insert(0.0) += w_child[i];
                }
            }
            let w_t = weights[t].as_mut().expect("parent folds after its children");
            match db.table(&rel.tables[t]).and_then(|tb| tb.column_by_name(own_col)) {
                Some(col) => {
                    for (i, &row) in rel.sel[t].iter().enumerate() {
                        w_t[i] *= by_key.get(&col.value_ref(row)).copied().unwrap_or(0.0);
                    }
                }
                // A missing join column never matches (cf. `Predicate`):
                // every tuple drops.
                None => w_t.iter_mut().for_each(|w| *w = 0.0),
            }
        }
    }
    weights[0].take().expect("root weights remain").iter().sum()
}

fn exec_count(db: &Database, node: &mut PlanNode, model: &CostModel) -> (CountRel, f64) {
    let (relation, cost): (CountRel, f64) = match &node.op {
        PhysicalOp::SeqScan { .. } | PhysicalOp::IndexScan { .. } => {
            let (table, rows, cost) = exec_scan(db, &node.op, model);
            let card = rows.len() as f64;
            (CountRel { tables: vec![table], sel: vec![rows], edges: Vec::new(), card, dead: false }, cost)
        }
        PhysicalOp::HashJoin { condition }
        | PhysicalOp::MergeJoin { condition }
        | PhysicalOp::NestedLoopJoin { condition } => {
            let condition = condition.clone();
            let op_kind = node.op.clone();
            assert_eq!(node.children.len(), 2, "join node must have two children");
            let (left, left_cost) = exec_count(db, &mut node.children[0], model);
            let (right, right_cost) = exec_count(db, &mut node.children[1], model);
            let (l, r) = (left.card, right.card);

            let mut rel = merge_count_rels(left, right, &condition);
            rel.card = if rel.dead { 0.0 } else { count_join_tree(db, &rel) };
            let own_cost = join_cost(model, &op_kind, l, r, rel.card, right_cost);
            (rel, left_cost + right_cost + own_cost)
        }
        PhysicalOp::Sort { .. } => {
            assert_eq!(node.children.len(), 1, "sort node must have one child");
            let (rel, child_cost) = exec_count(db, &mut node.children[0], model);
            let own = model.sort(rel.card);
            (rel, child_cost + own)
        }
        PhysicalOp::Aggregate { hash, group_columns } => {
            let hash = *hash;
            let n_group_cols = group_columns.len();
            assert_eq!(node.children.len(), 1, "aggregate node must have one child");
            let (rel, child_cost) = exec_count(db, &mut node.children[0], model);
            let input = rel.card;
            // Without GROUP BY the aggregate produces a single row; the
            // workloads only use global MIN/MAX/COUNT aggregates.
            let out_rows = if n_group_cols == 0 { 1.0 } else { input.max(1.0).sqrt().ceil() };
            let own = model.aggregate(input, out_rows, hash);
            // The aggregate erases the tuple structure; mark the relation
            // dead so an (unsupported) join above it matches the
            // materializing executor's empty result.
            let out = CountRel { tables: Vec::new(), sel: Vec::new(), edges: Vec::new(), card: out_rows, dead: true };
            (out, child_cost + own)
        }
    };

    node.annotations.true_cardinality = Some(relation.card);
    node.annotations.true_cost = Some(cost);
    (relation, cost)
}

/// Merge two factorized relations with the join condition as a new edge.
/// When the condition cannot be oriented (one side in `left`, the other in
/// `right`) the merged relation is dead: the materializing executor finds no
/// key matches in that case and produces zero rows.
fn merge_count_rels(left: CountRel, right: CountRel, condition: &JoinPredicate) -> CountRel {
    let offset = left.tables.len();
    let mut tables = left.tables;
    tables.extend(right.tables);
    let mut sel = left.sel;
    sel.extend(right.sel);
    let mut edges = left.edges;
    edges.extend(right.edges.into_iter().map(|(ti, ci, tj, cj)| (ti + offset, ci, tj + offset, cj)));

    let in_left = |t: &str| tables[..offset].iter().position(|x| x == t);
    let in_right = |t: &str| tables[offset..].iter().position(|x| x == t).map(|p| p + offset);
    let oriented = match (in_left(&condition.left_table), in_right(&condition.right_table)) {
        (Some(li), Some(ri)) => Some((li, condition.left_column.clone(), ri, condition.right_column.clone())),
        _ => match (in_left(&condition.right_table), in_right(&condition.left_table)) {
            (Some(li), Some(ri)) => Some((li, condition.right_column.clone(), ri, condition.left_column.clone())),
            _ => None,
        },
    };
    let mut dead = left.dead || right.dead;
    match oriented {
        Some((li, lc, ri, rc)) => edges.push((li, lc, ri, rc)),
        None => dead = true,
    }
    CountRel { tables, sel, edges, card: 0.0, dead }
}

// --------------------------------------------------------------------------
// Materializing mode (the oracle)
// --------------------------------------------------------------------------

/// A materialized intermediate relation in columnar form: `cols[t][i]` is
/// the base-table row id of table `tables[t]` in output tuple `i`.
struct MatRel {
    tables: Vec<String>,
    cols: Vec<Vec<usize>>,
    len: usize,
}

fn exec_materialize(db: &Database, node: &mut PlanNode, model: &CostModel) -> (MatRel, f64) {
    let (relation, cost): (MatRel, f64) = match &node.op {
        PhysicalOp::SeqScan { .. } | PhysicalOp::IndexScan { .. } => {
            let (table, rows, cost) = exec_scan(db, &node.op, model);
            let len = rows.len();
            (MatRel { tables: vec![table], cols: vec![rows], len }, cost)
        }
        PhysicalOp::HashJoin { condition }
        | PhysicalOp::MergeJoin { condition }
        | PhysicalOp::NestedLoopJoin { condition } => {
            let condition = condition.clone();
            let op_kind = node.op.clone();
            assert_eq!(node.children.len(), 2, "join node must have two children");
            let (left, left_cost) = exec_materialize(db, &mut node.children[0], model);
            let (right, right_cost) = exec_materialize(db, &mut node.children[1], model);

            // Determine which side holds which join column (as the original
            // executor did: orientation follows the left child).
            let (build_tab, build_col, probe_tab, probe_col) = if left.tables.contains(&condition.left_table) {
                (&condition.left_table, &condition.left_column, &condition.right_table, &condition.right_column)
            } else {
                (&condition.right_table, &condition.right_column, &condition.left_table, &condition.left_column)
            };

            // Build on the left child, probe with the right; keys borrow
            // from the column storage, so no per-row allocation.
            let mut build: HashMap<ValueRef<'_>, Vec<usize>> = HashMap::new();
            let build_side = left
                .tables
                .iter()
                .position(|t| t == build_tab)
                .and_then(|p| db.table(build_tab).and_then(|t| t.column_by_name(build_col)).map(|c| (p, c)));
            if let Some((pos, col)) = build_side {
                for (i, &row) in left.cols[pos].iter().enumerate() {
                    build.entry(col.value_ref(row)).or_default().push(i);
                }
            }
            let n_cols = left.tables.len() + right.tables.len();
            let mut out_cols: Vec<Vec<usize>> = vec![Vec::new(); n_cols];
            let probe_side = right
                .tables
                .iter()
                .position(|t| t == probe_tab)
                .and_then(|p| db.table(probe_tab).and_then(|t| t.column_by_name(probe_col)).map(|c| (p, c)));
            if let Some((pos, col)) = probe_side {
                for (j, &row) in right.cols[pos].iter().enumerate() {
                    if let Some(matches) = build.get(&col.value_ref(row)) {
                        for &i in matches {
                            for (c, lc) in left.cols.iter().enumerate() {
                                out_cols[c].push(lc[i]);
                            }
                            for (c, rc) in right.cols.iter().enumerate() {
                                out_cols[left.cols.len() + c].push(rc[j]);
                            }
                        }
                    }
                }
            }
            let mut tables = left.tables;
            tables.extend(right.tables);
            let len = out_cols.first().map(|c| c.len()).unwrap_or(0);
            let own_cost = join_cost(model, &op_kind, left.len as f64, right.len as f64, len as f64, right_cost);
            (MatRel { tables, cols: out_cols, len }, left_cost + right_cost + own_cost)
        }
        PhysicalOp::Sort { .. } => {
            assert_eq!(node.children.len(), 1, "sort node must have one child");
            let (rel, child_cost) = exec_materialize(db, &mut node.children[0], model);
            let own = model.sort(rel.len as f64);
            (rel, child_cost + own)
        }
        PhysicalOp::Aggregate { hash, group_columns } => {
            let hash = *hash;
            let n_group_cols = group_columns.len();
            assert_eq!(node.children.len(), 1, "aggregate node must have one child");
            let (rel, child_cost) = exec_materialize(db, &mut node.children[0], model);
            let input = rel.len as f64;
            let out_rows = if n_group_cols == 0 { 1.0 } else { input.max(1.0).sqrt().ceil() };
            let own = model.aggregate(input, out_rows, hash);
            let out = MatRel { tables: Vec::new(), cols: Vec::new(), len: out_rows as usize };
            (out, child_cost + own)
        }
    };

    node.annotations.true_cardinality = Some(relation.len as f64);
    node.annotations.true_cost = Some(cost);
    (relation, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    #[test]
    fn seq_scan_without_predicate_returns_all_rows() {
        let db = db();
        let mut plan = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None });
        let res = execute_plan(&db, &mut plan, &CostModel::default());
        assert_eq!(res.cardinality, db.table_rows("title") as f64);
        assert!(plan.annotations.true_cost.expect("cost set") > 0.0);
    }

    #[test]
    fn seq_scan_with_predicate_filters() {
        let db = db();
        let pred = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2010.0));
        let mut plan = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: Some(pred.clone()) });
        let res = execute_plan(&db, &mut plan, &CostModel::default());
        let title = db.table("title").expect("exists");
        let expected = (0..title.n_rows()).filter(|&r| pred.matches_row(title, r)).count();
        assert_eq!(res.cardinality, expected as f64);
        assert!(res.cardinality < db.table_rows("title") as f64);
    }

    #[test]
    fn join_cardinality_matches_manual_count() {
        let db = db();
        let scan_ct = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "company_type".into(),
            predicate: Some(Predicate::atom(
                "company_type",
                "kind",
                CompareOp::Eq,
                Operand::Str("production companies".into()),
            )),
        });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin {
                condition: JoinPredicate::new("movie_companies", "company_type_id", "company_type", "id"),
            },
            vec![scan_ct, scan_mc],
        );
        let res = execute_plan(&db, &mut join, &CostModel::default());

        // Manual count: movie_companies rows with company_type_id == 1.
        let mc = db.table("movie_companies").expect("exists");
        let expected = (0..mc.n_rows()).filter(|&r| mc.int("company_type_id", r) == Some(1)).count();
        assert_eq!(res.cardinality, expected as f64);
        // Children annotated too.
        assert!(join.children[0].annotations.true_cardinality.is_some());
        assert!(join.children[1].annotations.true_cardinality.is_some());
    }

    #[test]
    fn join_operators_agree_on_cardinality_but_not_cost() {
        let db = db();
        let mk_plan = |op: fn(JoinPredicate) -> PhysicalOp| {
            PlanNode::inner(
                op(JoinPredicate::new("movie_info_idx", "movie_id", "title", "id")),
                vec![
                    PlanNode::leaf(PhysicalOp::SeqScan {
                        table: "title".into(),
                        predicate: Some(Predicate::atom(
                            "title",
                            "production_year",
                            CompareOp::Lt,
                            Operand::Num(1950.0),
                        )),
                    }),
                    PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_info_idx".into(), predicate: None }),
                ],
            )
        };
        let model = CostModel::default();
        let mut hash = mk_plan(|c| PhysicalOp::HashJoin { condition: c });
        let mut merge = mk_plan(|c| PhysicalOp::MergeJoin { condition: c });
        let mut nl = mk_plan(|c| PhysicalOp::NestedLoopJoin { condition: c });
        let rh = execute_plan(&db, &mut hash, &model);
        let rm = execute_plan(&db, &mut merge, &model);
        let rn = execute_plan(&db, &mut nl, &model);
        assert_eq!(rh.cardinality, rm.cardinality);
        assert_eq!(rh.cardinality, rn.cardinality);
        assert!(rh.cost < rn.cost, "hash join should be cheaper than nested loop here");
    }

    #[test]
    fn aggregate_produces_single_row() {
        let db = db();
        let scan = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut agg = PlanNode::inner(PhysicalOp::Aggregate { hash: false, group_columns: vec![] }, vec![scan]);
        let res = execute_plan(&db, &mut agg, &CostModel::default());
        assert_eq!(res.cardinality, 1.0);
        // Cumulative cost grows from child to parent.
        let child_cost = agg.children[0].annotations.true_cost.expect("cost");
        assert!(res.cost > child_cost);
    }

    #[test]
    fn empty_result_propagates_zero_cardinality() {
        let db = db();
        let pred = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(3000.0));
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: Some(pred) });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        let res = execute_plan(&db, &mut join, &CostModel::default());
        assert_eq!(res.cardinality, 0.0);
        assert!(res.cost > 0.0);
    }

    #[test]
    fn three_way_join_executes() {
        let db = db();
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "title".into(),
            predicate: Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2005.0))),
        });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let scan_mii = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_info_idx".into(), predicate: None });
        let join1 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        let mut join2 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_info_idx", "movie_id", "title", "id") },
            vec![join1, scan_mii],
        );
        let res = execute_plan(&db, &mut join2, &CostModel::default());
        assert!(res.cardinality > 0.0);
        assert!(res.cost > 0.0);
        // Every node is annotated.
        let mut count = 0;
        join2.visit_preorder(&mut |n, _| {
            assert!(n.annotations.true_cardinality.is_some());
            assert!(n.annotations.true_cost.is_some());
            count += 1;
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn index_scan_uses_index_and_matches_seq_scan() {
        let db = db();
        let mc = db.table("movie_companies").expect("exists");
        let key = mc.int("movie_id", 3).expect("int");
        let pred = Predicate::atom("movie_companies", "movie_id", CompareOp::Eq, Operand::Num(key as f64))
            .and(Predicate::atom("movie_companies", "company_type_id", CompareOp::Gt, Operand::Num(1.0)));
        let model = CostModel::default();
        let mut idx = PlanNode::leaf(PhysicalOp::IndexScan {
            table: "movie_companies".into(),
            index_column: "movie_id".into(),
            predicate: Some(pred.clone()),
        });
        let mut seq =
            PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: Some(pred.clone()) });
        let ri = execute_plan(&db, &mut idx, &model);
        let rs = execute_plan(&db, &mut seq, &model);
        assert_eq!(ri.cardinality, rs.cardinality, "index path must return the filter-scan result");
        // Manual count through the index.
        let index = db.index("movie_companies", "movie_id").expect("index exists");
        let expected = index.lookup(key).iter().filter(|&&r| mc.int("company_type_id", r).expect("int") > 1).count();
        assert_eq!(ri.cardinality, expected as f64);
        assert!(ri.cost < rs.cost, "selective index probe should be cheaper than a seq scan");
    }

    #[test]
    fn index_scan_with_or_predicate_falls_back_to_filter_semantics() {
        let db = db();
        // The equality on the index column sits under an OR, so it is not a
        // conjunct and must not drive the index probe.
        let pred = Predicate::atom("movie_companies", "movie_id", CompareOp::Eq, Operand::Num(5.0))
            .or(Predicate::atom("movie_companies", "company_type_id", CompareOp::Eq, Operand::Num(2.0)));
        let model = CostModel::default();
        let mut idx = PlanNode::leaf(PhysicalOp::IndexScan {
            table: "movie_companies".into(),
            index_column: "movie_id".into(),
            predicate: Some(pred.clone()),
        });
        let mut seq = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: Some(pred) });
        let ri = execute_plan(&db, &mut idx, &model);
        let rs = execute_plan(&db, &mut seq, &model);
        assert_eq!(ri.cardinality, rs.cardinality);
        assert!(ri.cardinality > 0.0);
    }

    #[test]
    fn index_scan_non_integral_equality_matches_nothing() {
        let db = db();
        let pred = Predicate::atom("movie_companies", "movie_id", CompareOp::Eq, Operand::Num(7.5));
        let mut idx = PlanNode::leaf(PhysicalOp::IndexScan {
            table: "movie_companies".into(),
            index_column: "movie_id".into(),
            predicate: Some(pred),
        });
        let res = execute_plan(&db, &mut idx, &CostModel::default());
        assert_eq!(res.cardinality, 0.0);
    }

    /// The heart of this PR: the counting executor must agree exactly with
    /// the materializing oracle, node by node, on randomized planner output.
    #[test]
    fn counting_agrees_with_materializing_oracle_on_random_plans() {
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;

        let db = db();
        let model = CostModel::default();
        let edges: Vec<JoinPredicate> = db
            .schema()
            .join_edges()
            .into_iter()
            .map(|e| JoinPredicate::new(&e.fk_table, &e.fk_column, &e.pk_table, &e.pk_column))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut join_plans = 0usize;
        for _ in 0..60 {
            // Random connected join set (0..=4 joins) walked from a random
            // edge, then a random left-deep plan over it.
            let mut shuffled = edges.clone();
            shuffled.shuffle(&mut rng);
            let n_joins = rng.gen_range(0..=4usize);
            let mut tables: Vec<String> = Vec::new();
            let mut joins: Vec<JoinPredicate> = Vec::new();
            if n_joins == 0 {
                tables.push(
                    ["title", "movie_companies", "movie_info", "cast_info"]
                        .choose(&mut rng)
                        .expect("non-empty")
                        .to_string(),
                );
            } else {
                tables.push(shuffled[0].left_table.clone());
                tables.push(shuffled[0].right_table.clone());
                joins.push(shuffled[0].clone());
                while joins.len() < n_joins {
                    let next =
                        shuffled.iter().find(|e| tables.contains(&e.left_table) != tables.contains(&e.right_table));
                    match next {
                        Some(e) => {
                            let e = e.clone();
                            if !tables.contains(&e.left_table) {
                                tables.push(e.left_table.clone());
                            }
                            if !tables.contains(&e.right_table) {
                                tables.push(e.right_table.clone());
                            }
                            joins.push(e);
                        }
                        None => break,
                    }
                }
            }
            // Random predicates: numeric ranges on year-ish columns plus an
            // occasional string LIKE.
            let mut filters = std::collections::HashMap::new();
            for t in &tables {
                if *t == "title" && rng.gen_bool(0.7) {
                    let year = rng.gen_range(1940..2015) as f64;
                    let op = *[CompareOp::Gt, CompareOp::Lt, CompareOp::Ne].choose(&mut rng).expect("ops");
                    filters.insert(t.clone(), Predicate::atom("title", "production_year", op, Operand::Num(year)));
                }
                if *t == "movie_companies" && rng.gen_bool(0.5) {
                    let p = Predicate::atom(
                        "movie_companies",
                        "company_type_id",
                        CompareOp::Eq,
                        Operand::Num(rng.gen_range(1..4) as f64),
                    );
                    let p = if rng.gen_bool(0.4) {
                        p.or(Predicate::atom(
                            "movie_companies",
                            "note",
                            CompareOp::Like,
                            Operand::Str("%(co-production)%".into()),
                        ))
                    } else {
                        p
                    };
                    filters.insert(t.clone(), p);
                }
            }
            let query = query::LogicalQuery { projections: vec![], tables: tables.clone(), joins, filters };
            let plan = crate::planner::plan_query(&db, &query, &crate::planner::PlannerConfig::default());
            if plan.size() > 1 {
                join_plans += 1;
            }

            let mut counted = plan.clone();
            let mut materialized = plan.clone();
            let rc = execute_plan_mode(&db, &mut counted, &model, ExecMode::Count);
            let rm = execute_plan_mode(&db, &mut materialized, &model, ExecMode::Materialize);
            assert_eq!(rc.cardinality, rm.cardinality, "root cardinality diverged for {}", plan.explain());
            assert!((rc.cost - rm.cost).abs() < 1e-6 * rm.cost.max(1.0), "root cost diverged");
            // Every sub-plan must agree exactly as well.
            let cn = counted.nodes_preorder();
            let mn = materialized.nodes_preorder();
            assert_eq!(cn.len(), mn.len());
            for (c, m) in cn.iter().zip(mn.iter()) {
                assert_eq!(
                    c.annotations.true_cardinality,
                    m.annotations.true_cardinality,
                    "node cardinality diverged for {}",
                    plan.explain()
                );
            }
        }
        assert!(join_plans > 20, "randomized suite degenerated to single scans");
    }

    #[test]
    fn duplicate_table_plan_falls_back_to_the_oracle() {
        let db = db();
        // Self-join shape the counting executor does not model: title ⋈ title.
        let scan_a = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None });
        let scan_b = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("title", "id", "title", "id") },
            vec![scan_a, scan_b],
        );
        assert!(!plan_is_countable(&join));
        // Count mode silently uses the materializing path, which joins every
        // title row with itself on the unique id.
        let res = execute_plan(&db, &mut join, &CostModel::default());
        assert_eq!(res.cardinality, db.table_rows("title") as f64);
    }

    #[test]
    fn counting_star_join_stays_factorized_on_hot_keys() {
        // A 3-fact star join over the hottest movies: the counting path's
        // work is linear in the selected rows even though the tuple output
        // is the product of the per-table fan-outs.
        let db = db();
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let scan_mk = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_keyword".into(), predicate: None });
        let scan_ci = PlanNode::leaf(PhysicalOp::SeqScan { table: "cast_info".into(), predicate: None });
        let j1 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        let j2 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_keyword", "movie_id", "title", "id") },
            vec![j1, scan_mk],
        );
        let mut j3 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("cast_info", "movie_id", "title", "id") },
            vec![j2, scan_ci],
        );
        let res = execute_plan(&db, &mut j3, &CostModel::default());
        // Exact expected count: sum over movies of the product of fan-outs.
        let count_by = |table: &str| {
            let t = db.table(table).expect("exists");
            let mut c = vec![0f64; db.table_rows("title")];
            for r in 0..t.n_rows() {
                c[t.int("movie_id", r).expect("int") as usize - 1] += 1.0;
            }
            c
        };
        let (mc, mk, ci) = (count_by("movie_companies"), count_by("movie_keyword"), count_by("cast_info"));
        let expected: f64 = (0..db.table_rows("title")).map(|m| mc[m] * mk[m] * ci[m]).sum();
        assert_eq!(res.cardinality, expected);
        assert!(res.cardinality > 1e5, "star join should be large: {}", res.cardinality);
    }
}
