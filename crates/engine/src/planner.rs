//! A heuristic cost-based planner.
//!
//! Plays the role of the PostgreSQL optimizer that produced the paper's
//! training plans: it turns a [`LogicalQuery`] into a physical [`PlanNode`]
//! tree by (1) choosing a scan operator per table, (2) ordering joins
//! greedily by estimated input size, and (3) picking a join operator per
//! join.  The estimates used here are deliberately crude (table sizes times
//! fixed per-atom selectivities) — the point is only to produce realistic,
//! varied plan shapes; the *learned* estimator then works on whatever plans
//! come out, exactly as in the paper.

use imdb::Database;
use query::{CompareOp, JoinPredicate, LogicalQuery, PhysicalOp, PlanNode, Predicate};

/// Planner tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Default selectivity assumed per predicate atom.
    pub atom_selectivity: f64,
    /// Outer-cardinality threshold below which an index nested-loop join is
    /// chosen over a hash join when the inner side exposes an index.
    pub nested_loop_threshold: f64,
    /// When true, a final Aggregate node is added if the query projects
    /// aggregates.
    pub add_aggregate: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { atom_selectivity: 0.2, nested_loop_threshold: 200.0, add_aggregate: true }
    }
}

/// Rough cardinality guess for a scan of `table` under `filter`.
fn guess_scan_rows(db: &Database, table: &str, filter: Option<&Predicate>, cfg: &PlannerConfig) -> f64 {
    let rows = db.table_rows(table) as f64;
    match filter {
        None => rows,
        Some(p) => {
            let atoms = p.num_atoms() as f64;
            (rows * cfg.atom_selectivity.powf(atoms.min(3.0))).max(1.0)
        }
    }
}

/// True when the filter contains an equality atom on an indexed column of
/// the table (the case where an index scan is chosen).
fn equality_on_indexed_column(db: &Database, table: &str, filter: Option<&Predicate>) -> Option<String> {
    let filter = filter?;
    let def = db.schema().table(table)?;
    for atom in filter.atoms() {
        if atom.table == table && atom.op == CompareOp::Eq {
            if let Some(col) = def.column(&atom.column) {
                if col.indexed {
                    return Some(atom.column.clone());
                }
            }
        }
    }
    None
}

/// Build the scan node for a table.
fn build_scan(db: &Database, table: &str, filter: Option<&Predicate>) -> PlanNode {
    if let Some(index_column) = equality_on_indexed_column(db, table, filter) {
        PlanNode::leaf(PhysicalOp::IndexScan { table: table.to_string(), index_column, predicate: filter.cloned() })
    } else {
        PlanNode::leaf(PhysicalOp::SeqScan { table: table.to_string(), predicate: filter.cloned() })
    }
}

/// Pick the join operator for joining an outer plan of `outer_rows` with a
/// scan of `inner_table` (`inner_rows`): index nested loop for a tiny outer
/// over an indexed inner key, merge join when both inputs are large and
/// similar, hash join otherwise.  Shared by the greedy planner and the
/// candidate enumerator so a given (prefix, table) pair always gets the
/// same operator.
fn choose_join_op(
    db: &Database,
    inner_table: &str,
    join_pred: JoinPredicate,
    outer_rows: f64,
    inner_rows: f64,
    cfg: &PlannerConfig,
) -> PhysicalOp {
    let inner_indexed = db
        .schema()
        .table(inner_table)
        .and_then(|d| join_pred.column_for(inner_table).and_then(|c| d.column(c)))
        .map(|c| c.indexed)
        .unwrap_or(false);
    if outer_rows <= cfg.nested_loop_threshold && inner_indexed {
        PhysicalOp::NestedLoopJoin { condition: join_pred }
    } else if outer_rows > 1000.0 && inner_rows > 1000.0 && (outer_rows / inner_rows).max(inner_rows / outer_rows) < 2.0
    {
        PhysicalOp::MergeJoin { condition: join_pred }
    } else {
        PhysicalOp::HashJoin { condition: join_pred }
    }
}

/// Enumerate candidate left-deep join orders for a query, as a DP plan
/// enumerator would: every permutation of the joined tables whose prefixes
/// stay connected in the join graph yields one candidate
/// `((t1 ⋈ t2) ⋈ t3) ⋈ …` tree, capped at `max_candidates` (DFS order, so
/// the kept candidates share long prefixes).  Scan choice and join-operator
/// selection are deterministic per prefix (the greedy planner's rules), so
/// two candidates extending the same table sequence share that entire
/// subtree — the heavy subtree overlap the estimator's serving-layer
/// memoization amortizes.  No final aggregate is attached: candidates are
/// join orders, not complete query plans.
///
/// Single-table queries yield their one scan.  Returns at least one
/// candidate for every connected query.
///
/// # Panics
/// Panics if the query references no tables or `max_candidates` is zero.
pub fn enumerate_join_orders(
    db: &Database,
    query: &LogicalQuery,
    cfg: &PlannerConfig,
    max_candidates: usize,
) -> Vec<PlanNode> {
    assert!(!query.tables.is_empty(), "query must reference at least one table");
    assert!(max_candidates > 0, "max_candidates must be positive");
    let scans: Vec<(String, PlanNode, f64)> = query
        .tables
        .iter()
        .map(|t| {
            let filter = query.filter(t);
            (t.clone(), build_scan(db, t, filter), guess_scan_rows(db, t, filter, cfg))
        })
        .collect();
    if scans.len() == 1 {
        return vec![scans.into_iter().next().expect("one scan").1];
    }

    struct Dfs<'a> {
        db: &'a Database,
        query: &'a LogicalQuery,
        cfg: &'a PlannerConfig,
        scans: &'a [(String, PlanNode, f64)],
        max_candidates: usize,
        out: Vec<PlanNode>,
    }

    impl Dfs<'_> {
        fn extend(&mut self, used: &mut Vec<bool>, joined: &mut Vec<String>, current: PlanNode, current_rows: f64) {
            if self.out.len() >= self.max_candidates {
                return;
            }
            if joined.len() == self.scans.len() {
                self.out.push(current);
                return;
            }
            for i in 0..self.scans.len() {
                if used[i] {
                    continue;
                }
                let (table, scan, scan_rows) = &self.scans[i];
                // The next table must connect to the joined prefix; for a
                // connected query some unused table always does.
                let Some(join_pred) = self
                    .query
                    .joins
                    .iter()
                    .find(|j| j.involves(table) && joined.iter().any(|jt| j.involves(jt)))
                    .cloned()
                else {
                    continue;
                };
                let op = choose_join_op(self.db, table, join_pred, current_rows, *scan_rows, self.cfg);
                // Children stay in enumeration order (prefix first): two
                // candidates sharing a table prefix share the whole subtree.
                let next = PlanNode::inner(op, vec![current.clone(), scan.clone()]);
                let next_rows = (current_rows.max(*scan_rows) * 1.2).max(1.0);
                used[i] = true;
                joined.push(table.clone());
                self.extend(used, joined, next, next_rows);
                joined.pop();
                used[i] = false;
                if self.out.len() >= self.max_candidates {
                    return;
                }
            }
        }
    }

    let mut dfs = Dfs { db, query, cfg, scans: &scans, max_candidates, out: Vec::new() };
    for i in 0..scans.len() {
        let (table, scan, rows) = &scans[i];
        let mut used = vec![false; scans.len()];
        used[i] = true;
        let mut joined = vec![table.clone()];
        dfs.extend(&mut used, &mut joined, scan.clone(), *rows);
        if dfs.out.len() >= max_candidates {
            break;
        }
    }
    dfs.out
}

/// Plan a logical query into a physical plan tree.
///
/// # Panics
/// Panics if the query references no tables.
pub fn plan_query(db: &Database, query: &LogicalQuery, cfg: &PlannerConfig) -> PlanNode {
    assert!(!query.tables.is_empty(), "query must reference at least one table");

    // Scans with their rough cardinality guesses.
    let mut pending: Vec<(String, PlanNode, f64)> = query
        .tables
        .iter()
        .map(|t| {
            let filter = query.filter(t);
            (t.clone(), build_scan(db, t, filter), guess_scan_rows(db, t, filter, cfg))
        })
        .collect();

    // Greedy left-deep join ordering: start from the smallest estimated scan,
    // repeatedly join with the cheapest connected table.
    pending.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite estimates"));
    let (mut joined_tables, mut current, mut current_rows) = {
        let (t, node, rows) = pending.remove(0);
        (vec![t], node, rows)
    };
    let mut remaining_joins: Vec<JoinPredicate> = query.joins.clone();

    while !pending.is_empty() {
        // Find a pending table connected to the joined set.
        let mut chosen: Option<(usize, JoinPredicate)> = None;
        for (i, (t, _, rows)) in pending.iter().enumerate() {
            if let Some(j) =
                remaining_joins.iter().find(|j| j.involves(t) && joined_tables.iter().any(|jt| j.involves(jt)))
            {
                match &chosen {
                    Some((best_i, _)) if pending[*best_i].2 <= *rows => {}
                    _ => chosen = Some((i, j.clone())),
                }
            }
        }
        let (idx, join_pred) = match chosen {
            Some(c) => c,
            // Disconnected query (should not happen for generated workloads):
            // fall back to joining with the first pending table on a cross
            // product expressed as a hash join over the first remaining join.
            None => (
                0,
                remaining_joins
                    .first()
                    .cloned()
                    .unwrap_or_else(|| JoinPredicate::new(&joined_tables[0], "id", &pending[0].0, "id")),
            ),
        };
        let (table, scan, scan_rows) = pending.remove(idx);
        remaining_joins.retain(|j| j != &join_pred);

        // Estimate output as the larger input times a fixed fan-out guess.
        let out_rows = (current_rows.max(scan_rows) * 1.2).max(1.0);

        let op = choose_join_op(db, &table, join_pred, current_rows, scan_rows, cfg);

        // Build side (left child) is the smaller input.
        let children = if current_rows <= scan_rows { vec![current, scan] } else { vec![scan, current] };
        current = PlanNode::inner(op, children);
        current_rows = out_rows;
        joined_tables.push(table);
    }

    // Final aggregate when the query projects aggregates.
    let has_aggregate = query.projections.iter().any(|p| p.aggregate != query::Aggregate::None);
    if cfg.add_aggregate && has_aggregate {
        current = PlanNode::inner(PhysicalOp::Aggregate { hash: false, group_columns: vec![] }, vec![current]);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{Aggregate, Operand, Projection};
    use std::collections::HashMap;

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    fn job_light_style_query() -> LogicalQuery {
        let mut filters = HashMap::new();
        filters.insert(
            "title".to_string(),
            Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2000.0)),
        );
        filters.insert(
            "company_type".to_string(),
            Predicate::atom("company_type", "kind", CompareOp::Eq, Operand::Str("production companies".into())),
        );
        LogicalQuery {
            tables: vec!["title".into(), "movie_companies".into(), "company_type".into()],
            joins: vec![
                JoinPredicate::new("movie_companies", "movie_id", "title", "id"),
                JoinPredicate::new("movie_companies", "company_type_id", "company_type", "id"),
            ],
            filters,
            projections: vec![Projection { table: "title".into(), column: "id".into(), aggregate: Aggregate::Count }],
        }
    }

    #[test]
    fn plan_covers_all_tables_and_joins() {
        let db = db();
        let q = job_light_style_query();
        let plan = plan_query(&db, &q, &PlannerConfig::default());
        let tables = plan.tables();
        assert_eq!(tables.len(), 3);
        // 3 scans + 2 joins + 1 aggregate
        assert_eq!(plan.size(), 6);
        assert!(matches!(plan.op, PhysicalOp::Aggregate { .. }));
    }

    #[test]
    fn single_table_plan_is_a_scan() {
        let db = db();
        let q = LogicalQuery::single_table(
            "movie_companies",
            Some(Predicate::atom("movie_companies", "note", CompareOp::Like, Operand::Str("%(presents)%".into()))),
        );
        let plan = plan_query(&db, &q, &PlannerConfig::default());
        // Aggregate on top of the scan (COUNT projection).
        assert!(matches!(plan.op, PhysicalOp::Aggregate { .. }));
        assert!(plan.children[0].op.is_scan());
    }

    #[test]
    fn equality_on_pk_uses_index_scan() {
        let db = db();
        let q = LogicalQuery::single_table(
            "title",
            Some(Predicate::atom("title", "id", CompareOp::Eq, Operand::Num(10.0))),
        );
        let plan = plan_query(&db, &q, &PlannerConfig { add_aggregate: false, ..Default::default() });
        assert!(matches!(plan.op, PhysicalOp::IndexScan { .. }), "expected index scan, got {}", plan.op.name());
    }

    #[test]
    fn planned_plan_executes_end_to_end() {
        let db = db();
        let q = job_light_style_query();
        let mut plan = plan_query(&db, &q, &PlannerConfig::default());
        let res = crate::executor::execute_plan(&db, &mut plan, &crate::cost::CostModel::default());
        assert!(res.cost > 0.0);
        assert_eq!(res.cardinality, 1.0, "aggregate plan must return one row");
        // The join below the aggregate has a real cardinality.
        assert!(plan.children[0].annotations.true_cardinality.expect("annotated") >= 0.0);
    }

    #[test]
    fn enumeration_covers_all_connected_orders() {
        let db = db();
        let q = job_light_style_query();
        let candidates = enumerate_join_orders(&db, &q, &PlannerConfig::default(), 1000);
        // Join graph: title—movie_companies—company_type.  Connected
        // left-deep orders: (t,mc,ct), (mc,t,ct), (mc,ct,t), (ct,mc,t).
        assert_eq!(candidates.len(), 4);
        let mut signatures = std::collections::HashSet::new();
        for c in &candidates {
            assert_eq!(c.size(), 5, "3 scans + 2 joins, no aggregate");
            assert_eq!(c.tables().len(), 3);
            assert!(c.op.is_join());
            assert!(signatures.insert(c.signature_hash()), "duplicate candidate emitted");
        }
    }

    #[test]
    fn enumeration_candidates_share_subtrees() {
        let db = db();
        let mut q = job_light_style_query();
        // Widen to a 4-table chain: subtree overlap grows with table count.
        q.tables.push("movie_info_idx".into());
        q.joins.push(JoinPredicate::new("movie_info_idx", "movie_id", "title", "id"));
        let candidates = enumerate_join_orders(&db, &q, &PlannerConfig::default(), 1000);
        assert_eq!(candidates.len(), 8, "a 4-table chain has 2^3 connected left-deep orders");
        // Count distinct sub-plan signatures across all candidate nodes: the
        // whole point of the enumeration workload is that this is far below
        // the total node count (shared scans and shared join prefixes).
        let mut total = 0usize;
        let mut distinct = std::collections::HashSet::new();
        for c in &candidates {
            for n in c.nodes_preorder() {
                total += 1;
                distinct.insert(n.signature_hash());
            }
        }
        assert!(
            distinct.len() * 2 < total + 1,
            "expected heavy subtree overlap, got {} distinct of {total} nodes",
            distinct.len()
        );
    }

    #[test]
    fn enumeration_respects_cap_and_single_table() {
        let db = db();
        let q = job_light_style_query();
        let capped = enumerate_join_orders(&db, &q, &PlannerConfig::default(), 2);
        assert_eq!(capped.len(), 2);
        let single = LogicalQuery::single_table("title", None);
        let only = enumerate_join_orders(&db, &single, &PlannerConfig::default(), 10);
        assert_eq!(only.len(), 1);
        assert!(only[0].op.is_scan());
    }

    #[test]
    fn enumerated_candidates_execute() {
        // Every candidate must be a valid physical plan for the query.
        let db = db();
        let q = job_light_style_query();
        for mut plan in enumerate_join_orders(&db, &q, &PlannerConfig::default(), 8) {
            let res = crate::executor::execute_plan(&db, &mut plan, &crate::cost::CostModel::default());
            assert!(res.cost > 0.0);
        }
    }

    #[test]
    fn greedy_plan_is_among_enumerated_shapes() {
        // The greedy planner's join tree (modulo its build-side swapping and
        // the aggregate) covers the same tables; sanity-check the enumerator
        // agrees on table coverage.
        let db = db();
        let q = job_light_style_query();
        let greedy = plan_query(&db, &q, &PlannerConfig { add_aggregate: false, ..Default::default() });
        let candidates = enumerate_join_orders(&db, &q, &PlannerConfig::default(), 1000);
        assert!(candidates.iter().all(|c| c.tables() == greedy.tables()));
    }

    #[test]
    fn plans_are_deterministic() {
        let db = db();
        let q = job_light_style_query();
        let a = plan_query(&db, &q, &PlannerConfig::default());
        let b = plan_query(&db, &q, &PlannerConfig::default());
        assert_eq!(a.signature(), b.signature());
    }
}
