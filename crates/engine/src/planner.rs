//! A heuristic cost-based planner.
//!
//! Plays the role of the PostgreSQL optimizer that produced the paper's
//! training plans: it turns a [`LogicalQuery`] into a physical [`PlanNode`]
//! tree by (1) choosing a scan operator per table, (2) ordering joins
//! greedily by estimated input size, and (3) picking a join operator per
//! join.  The estimates used here are deliberately crude (table sizes times
//! fixed per-atom selectivities) — the point is only to produce realistic,
//! varied plan shapes; the *learned* estimator then works on whatever plans
//! come out, exactly as in the paper.

use imdb::Database;
use query::{CompareOp, JoinPredicate, LogicalQuery, PhysicalOp, PlanNode, Predicate};

/// Planner tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Default selectivity assumed per predicate atom.
    pub atom_selectivity: f64,
    /// Outer-cardinality threshold below which an index nested-loop join is
    /// chosen over a hash join when the inner side exposes an index.
    pub nested_loop_threshold: f64,
    /// When true, a final Aggregate node is added if the query projects
    /// aggregates.
    pub add_aggregate: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { atom_selectivity: 0.2, nested_loop_threshold: 200.0, add_aggregate: true }
    }
}

/// Rough cardinality guess for a scan of `table` under `filter`.
fn guess_scan_rows(db: &Database, table: &str, filter: Option<&Predicate>, cfg: &PlannerConfig) -> f64 {
    let rows = db.table_rows(table) as f64;
    match filter {
        None => rows,
        Some(p) => {
            let atoms = p.num_atoms() as f64;
            (rows * cfg.atom_selectivity.powf(atoms.min(3.0))).max(1.0)
        }
    }
}

/// True when the filter contains an equality atom on an indexed column of
/// the table (the case where an index scan is chosen).
fn equality_on_indexed_column(db: &Database, table: &str, filter: Option<&Predicate>) -> Option<String> {
    let filter = filter?;
    let def = db.schema().table(table)?;
    for atom in filter.atoms() {
        if atom.table == table && atom.op == CompareOp::Eq {
            if let Some(col) = def.column(&atom.column) {
                if col.indexed {
                    return Some(atom.column.clone());
                }
            }
        }
    }
    None
}

/// Build the scan node for a table.
fn build_scan(db: &Database, table: &str, filter: Option<&Predicate>) -> PlanNode {
    if let Some(index_column) = equality_on_indexed_column(db, table, filter) {
        PlanNode::leaf(PhysicalOp::IndexScan { table: table.to_string(), index_column, predicate: filter.cloned() })
    } else {
        PlanNode::leaf(PhysicalOp::SeqScan { table: table.to_string(), predicate: filter.cloned() })
    }
}

/// Plan a logical query into a physical plan tree.
///
/// # Panics
/// Panics if the query references no tables.
pub fn plan_query(db: &Database, query: &LogicalQuery, cfg: &PlannerConfig) -> PlanNode {
    assert!(!query.tables.is_empty(), "query must reference at least one table");

    // Scans with their rough cardinality guesses.
    let mut pending: Vec<(String, PlanNode, f64)> = query
        .tables
        .iter()
        .map(|t| {
            let filter = query.filter(t);
            (t.clone(), build_scan(db, t, filter), guess_scan_rows(db, t, filter, cfg))
        })
        .collect();

    // Greedy left-deep join ordering: start from the smallest estimated scan,
    // repeatedly join with the cheapest connected table.
    pending.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite estimates"));
    let (mut joined_tables, mut current, mut current_rows) = {
        let (t, node, rows) = pending.remove(0);
        (vec![t], node, rows)
    };
    let mut remaining_joins: Vec<JoinPredicate> = query.joins.clone();

    while !pending.is_empty() {
        // Find a pending table connected to the joined set.
        let mut chosen: Option<(usize, JoinPredicate)> = None;
        for (i, (t, _, rows)) in pending.iter().enumerate() {
            if let Some(j) =
                remaining_joins.iter().find(|j| j.involves(t) && joined_tables.iter().any(|jt| j.involves(jt)))
            {
                match &chosen {
                    Some((best_i, _)) if pending[*best_i].2 <= *rows => {}
                    _ => chosen = Some((i, j.clone())),
                }
            }
        }
        let (idx, join_pred) = match chosen {
            Some(c) => c,
            // Disconnected query (should not happen for generated workloads):
            // fall back to joining with the first pending table on a cross
            // product expressed as a hash join over the first remaining join.
            None => (
                0,
                remaining_joins
                    .first()
                    .cloned()
                    .unwrap_or_else(|| JoinPredicate::new(&joined_tables[0], "id", &pending[0].0, "id")),
            ),
        };
        let (table, scan, scan_rows) = pending.remove(idx);
        remaining_joins.retain(|j| j != &join_pred);

        // Estimate output as the larger input times a fixed fan-out guess.
        let out_rows = (current_rows.max(scan_rows) * 1.2).max(1.0);

        // Pick the join operator: index nested loop for a tiny outer over an
        // indexed inner key, merge join when both inputs are large and
        // similar, hash join otherwise.
        let inner_indexed = db
            .schema()
            .table(&table)
            .and_then(|d| join_pred.column_for(&table).and_then(|c| d.column(c)))
            .map(|c| c.indexed)
            .unwrap_or(false);
        let op = if current_rows <= cfg.nested_loop_threshold && inner_indexed {
            PhysicalOp::NestedLoopJoin { condition: join_pred }
        } else if current_rows > 1000.0
            && scan_rows > 1000.0
            && (current_rows / scan_rows).max(scan_rows / current_rows) < 2.0
        {
            PhysicalOp::MergeJoin { condition: join_pred }
        } else {
            PhysicalOp::HashJoin { condition: join_pred }
        };

        // Build side (left child) is the smaller input.
        let children = if current_rows <= scan_rows { vec![current, scan] } else { vec![scan, current] };
        current = PlanNode::inner(op, children);
        current_rows = out_rows;
        joined_tables.push(table);
    }

    // Final aggregate when the query projects aggregates.
    let has_aggregate = query.projections.iter().any(|p| p.aggregate != query::Aggregate::None);
    if cfg.add_aggregate && has_aggregate {
        current = PlanNode::inner(PhysicalOp::Aggregate { hash: false, group_columns: vec![] }, vec![current]);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{Aggregate, Operand, Projection};
    use std::collections::HashMap;

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    fn job_light_style_query() -> LogicalQuery {
        let mut filters = HashMap::new();
        filters.insert(
            "title".to_string(),
            Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2000.0)),
        );
        filters.insert(
            "company_type".to_string(),
            Predicate::atom("company_type", "kind", CompareOp::Eq, Operand::Str("production companies".into())),
        );
        LogicalQuery {
            tables: vec!["title".into(), "movie_companies".into(), "company_type".into()],
            joins: vec![
                JoinPredicate::new("movie_companies", "movie_id", "title", "id"),
                JoinPredicate::new("movie_companies", "company_type_id", "company_type", "id"),
            ],
            filters,
            projections: vec![Projection { table: "title".into(), column: "id".into(), aggregate: Aggregate::Count }],
        }
    }

    #[test]
    fn plan_covers_all_tables_and_joins() {
        let db = db();
        let q = job_light_style_query();
        let plan = plan_query(&db, &q, &PlannerConfig::default());
        let tables = plan.tables();
        assert_eq!(tables.len(), 3);
        // 3 scans + 2 joins + 1 aggregate
        assert_eq!(plan.size(), 6);
        assert!(matches!(plan.op, PhysicalOp::Aggregate { .. }));
    }

    #[test]
    fn single_table_plan_is_a_scan() {
        let db = db();
        let q = LogicalQuery::single_table(
            "movie_companies",
            Some(Predicate::atom("movie_companies", "note", CompareOp::Like, Operand::Str("%(presents)%".into()))),
        );
        let plan = plan_query(&db, &q, &PlannerConfig::default());
        // Aggregate on top of the scan (COUNT projection).
        assert!(matches!(plan.op, PhysicalOp::Aggregate { .. }));
        assert!(plan.children[0].op.is_scan());
    }

    #[test]
    fn equality_on_pk_uses_index_scan() {
        let db = db();
        let q = LogicalQuery::single_table(
            "title",
            Some(Predicate::atom("title", "id", CompareOp::Eq, Operand::Num(10.0))),
        );
        let plan = plan_query(&db, &q, &PlannerConfig { add_aggregate: false, ..Default::default() });
        assert!(matches!(plan.op, PhysicalOp::IndexScan { .. }), "expected index scan, got {}", plan.op.name());
    }

    #[test]
    fn planned_plan_executes_end_to_end() {
        let db = db();
        let q = job_light_style_query();
        let mut plan = plan_query(&db, &q, &PlannerConfig::default());
        let res = crate::executor::execute_plan(&db, &mut plan, &crate::cost::CostModel::default());
        assert!(res.cost > 0.0);
        assert_eq!(res.cardinality, 1.0, "aggregate plan must return one row");
        // The join below the aggregate has a real cardinality.
        assert!(plan.children[0].annotations.true_cardinality.expect("annotated") >= 0.0);
    }

    #[test]
    fn plans_are_deterministic() {
        let db = db();
        let q = job_light_style_query();
        let a = plan_query(&db, &q, &PlannerConfig::default());
        let b = plan_query(&db, &q, &PlannerConfig::default());
        assert_eq!(a.signature(), b.signature());
    }
}
