//! Deterministic work-unit cost model.
//!
//! The constants mirror PostgreSQL's defaults (`seq_page_cost = 1.0`,
//! `random_page_cost = 4.0`, `cpu_tuple_cost = 0.01`, `cpu_operator_cost =
//! 0.0025`) so that the *shape* of the cost landscape — scans linear in table
//! size, index lookups logarithmic plus per-match random pages, hash joins
//! linear, nested loops multiplicative — matches the engine the paper
//! measured.  Applied to true cardinalities this model defines the "real
//! cost" used as the training target; applied to estimated cardinalities it
//! is the traditional estimator's cost output (`PGCost`).

use serde::{Deserialize, Serialize};

/// Tuples per page used to convert row counts into page counts.
const TUPLES_PER_PAGE: f64 = 64.0;

/// Cost-model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    pub seq_page_cost: f64,
    pub random_page_cost: f64,
    pub cpu_tuple_cost: f64,
    pub cpu_operator_cost: f64,
    pub hash_build_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
            hash_build_cost: 0.015,
        }
    }
}

impl CostModel {
    /// Cost of a sequential scan over `table_rows` rows evaluating
    /// `n_predicate_atoms` predicate atoms per row.
    pub fn seq_scan(&self, table_rows: f64, n_predicate_atoms: usize) -> f64 {
        let pages = (table_rows / TUPLES_PER_PAGE).ceil();
        pages * self.seq_page_cost
            + table_rows * self.cpu_tuple_cost
            + table_rows * n_predicate_atoms as f64 * self.cpu_operator_cost
    }

    /// Cost of an index scan returning `matched_rows` of a table with
    /// `table_rows` rows, plus residual predicate evaluation.
    pub fn index_scan(&self, table_rows: f64, matched_rows: f64, n_predicate_atoms: usize) -> f64 {
        let descent = (table_rows.max(2.0)).log2() * self.cpu_operator_cost * 50.0;
        descent
            + matched_rows * self.random_page_cost / TUPLES_PER_PAGE.sqrt()
            + matched_rows * self.cpu_tuple_cost
            + matched_rows * n_predicate_atoms as f64 * self.cpu_operator_cost
    }

    /// Cost of a hash join with `build_rows` on the build side, `probe_rows`
    /// on the probe side and `output_rows` results.
    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, output_rows: f64) -> f64 {
        build_rows * self.hash_build_cost + probe_rows * self.cpu_tuple_cost + output_rows * self.cpu_tuple_cost
    }

    /// Cost of a sort-merge join (includes sorting both inputs).
    pub fn merge_join(&self, left_rows: f64, right_rows: f64, output_rows: f64) -> f64 {
        self.sort(left_rows) + self.sort(right_rows) + (left_rows + right_rows + output_rows) * self.cpu_tuple_cost
    }

    /// Cost of a (possibly index-driven) nested-loop join.
    ///
    /// `inner_rescan_cost` is the cost of one scan of the inner child; it is
    /// paid once per outer row.
    pub fn nested_loop(&self, outer_rows: f64, inner_rescan_cost: f64, output_rows: f64) -> f64 {
        outer_rows * inner_rescan_cost.max(self.cpu_tuple_cost) + output_rows * self.cpu_tuple_cost
    }

    /// Cost of sorting `rows` rows.
    pub fn sort(&self, rows: f64) -> f64 {
        let r = rows.max(2.0);
        r * r.log2() * self.cpu_operator_cost * 2.0
    }

    /// Cost of aggregating `input_rows` rows into `output_rows` groups.
    pub fn aggregate(&self, input_rows: f64, output_rows: f64, hash: bool) -> f64 {
        let per_row = if hash { self.cpu_operator_cost * 2.0 } else { self.cpu_operator_cost };
        input_rows * (self.cpu_tuple_cost + per_row) + output_rows * self.cpu_tuple_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_linear_in_rows() {
        let m = CostModel::default();
        let small = m.seq_scan(1_000.0, 1);
        let large = m.seq_scan(10_000.0, 1);
        assert!(large > small * 8.0 && large < small * 12.0);
    }

    #[test]
    fn index_scan_cheaper_than_seq_scan_for_selective_lookup() {
        let m = CostModel::default();
        let seq = m.seq_scan(100_000.0, 1);
        let idx = m.index_scan(100_000.0, 10.0, 1);
        assert!(idx < seq / 10.0, "index scan {idx} not much cheaper than seq scan {seq}");
    }

    #[test]
    fn index_scan_degrades_with_matches() {
        let m = CostModel::default();
        assert!(m.index_scan(100_000.0, 50_000.0, 0) > m.index_scan(100_000.0, 10.0, 0));
    }

    #[test]
    fn hash_join_beats_nested_loop_on_large_inputs() {
        let m = CostModel::default();
        let hash = m.hash_join(50_000.0, 80_000.0, 100_000.0);
        let inner_scan = m.seq_scan(50_000.0, 0);
        let nl = m.nested_loop(80_000.0, inner_scan, 100_000.0);
        assert!(hash < nl / 100.0);
    }

    #[test]
    fn nested_loop_with_index_is_cheap_for_small_outer() {
        let m = CostModel::default();
        let inner_index = m.index_scan(100_000.0, 2.0, 0);
        let nl = m.nested_loop(10.0, inner_index, 20.0);
        let hash = m.hash_join(100_000.0, 10.0, 20.0);
        assert!(nl < hash, "index NL {nl} should beat hash join {hash} for tiny outer");
    }

    #[test]
    fn sort_superlinear() {
        let m = CostModel::default();
        assert!(m.sort(20_000.0) > 2.0 * m.sort(10_000.0));
    }

    #[test]
    fn aggregate_hash_costs_more_per_row() {
        let m = CostModel::default();
        assert!(m.aggregate(1000.0, 10.0, true) > m.aggregate(1000.0, 10.0, false));
    }

    #[test]
    fn costs_are_positive_and_finite() {
        let m = CostModel::default();
        for c in [
            m.seq_scan(0.0, 0),
            m.index_scan(0.0, 0.0, 0),
            m.hash_join(0.0, 0.0, 0.0),
            m.merge_join(0.0, 0.0, 0.0),
            m.nested_loop(0.0, 0.0, 0.0),
            m.sort(0.0),
            m.aggregate(0.0, 0.0, true),
        ] {
            assert!(c.is_finite() && c >= 0.0);
        }
    }
}
