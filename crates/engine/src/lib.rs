//! Plan generation and ground-truth execution.
//!
//! The paper trains on triples `<physical plan, real cost, real cardinality>`
//! obtained by running queries through PostgreSQL.  This crate provides the
//! equivalent substrate:
//!
//! * [`cost`] — a deterministic, PostgreSQL-style work-unit cost model
//!   (sequential/random page, CPU-per-tuple/operator terms).  Evaluated on
//!   *true* cardinalities it defines the "real cost" training target;
//!   evaluated on *estimated* cardinalities it is the traditional cost
//!   estimator baseline's cost function.
//! * [`executor`] — executes a physical plan against the in-memory database,
//!   annotating every node with its true output cardinality and true
//!   (cumulative) cost.  The default [`executor::ExecMode::Count`] path
//!   propagates per-key match counts through the join tree without ever
//!   materializing intermediate tuples, so ground truth stays cheap even for
//!   skewed star joins; [`executor::ExecMode::Materialize`] is the
//!   tuple-materializing oracle it is tested against.
//! * [`planner`] — a heuristic cost-based planner that turns a logical query
//!   into a physical plan (scan choice, greedy join ordering, join operator
//!   selection), playing the role of the PostgreSQL optimizer that produced
//!   the paper's training plans.

pub mod cost;
pub mod executor;
pub mod planner;

pub use cost::CostModel;
pub use executor::{execute_plan, execute_plan_mode, execute_plans, execute_plans_mode, ExecMode, ExecutionResult};
pub use planner::{enumerate_join_orders, plan_query, PlannerConfig};
