//! Quickstart: train the end-to-end estimator on a generated workload and
//! compare its estimates with the traditional (PostgreSQL-style) baseline on
//! a handful of held-out queries.
//!
//! Run with: `cargo run --release --example quickstart`

use e2e_cost_estimator::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Synthetic IMDB-like database (deterministic).
    let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: 2_000, sample_size: 128, seed: 42 }));
    println!("database: {} tables, title has {} rows", db.schema().tables.len(), db.table_rows("title"));

    // 2. Training workload: queries from the join graph, executed for ground truth.
    let train =
        generate_workload(&db, WorkloadConfig { num_queries: 150, max_joins: 3, seed: 11, ..Default::default() });
    let test =
        generate_workload(&db, WorkloadConfig { num_queries: 20, max_joins: 3, seed: 999, ..Default::default() });
    println!("generated {} training and {} test queries", train.len(), test.len());

    // 3. Learned estimator: hash-bitmap string encoding, tree-LSTM cell, multitask.
    let enc = EncodingConfig::from_database(&db, 16, 128);
    let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(16)));
    let mut estimator =
        CostEstimator::new(extractor, ModelConfig::default(), TrainConfig { epochs: 5, ..Default::default() });
    let plans: Vec<PlanNode> = train.iter().map(|s| s.plan.clone()).collect();
    let stats = estimator.fit(&plans);
    println!(
        "trained {} epochs; final validation card q-error {:.2}",
        stats.len(),
        stats.last().map(|s| s.validation_card_qerror_mean).unwrap_or(f64::NAN)
    );

    // 4. Compare with the traditional estimator on the held-out queries.
    let traditional = TraditionalEstimator::analyze(&db);
    println!("\n{:<60} {:>12} {:>12} {:>12}", "query", "true card", "PG q-err", "learned q-err");
    for sample in test.iter().take(10) {
        let true_card = sample.true_cardinality().max(1.0);
        let mut plan = sample.plan.clone();
        let (pg_card, _) = traditional.estimate_plan(&mut plan);
        let (_, learned_card) = estimator.estimate(&sample.plan);
        println!(
            "{:<60} {:>12.0} {:>12.2} {:>12.2}",
            sample.query.to_sql().chars().take(58).collect::<String>(),
            true_card,
            q_error(pg_card, true_card),
            q_error(learned_card, true_card),
        );
    }
}
