//! Numeric-predicate workloads (the setting of Tables 7 and 8): train the
//! tree-LSTM model, the tree-NN ablation and MSCN on a JOB-light-shaped
//! workload and print the cardinality error table.
//!
//! Run with: `cargo run --release --example numeric_workloads`

use e2e_cost_estimator::prelude::*;
use std::sync::Arc;

fn main() {
    let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: 2_000, sample_size: 128, seed: 42 }));
    let suite = WorkloadSuite::build(
        &db,
        WorkloadKind::JobLight,
        SuiteConfig { train_queries: 120, test_queries: 30, seed: 1000 },
    );

    let mut table = ReportTable::new("JOB-light-shaped workload — cardinality q-errors");

    // Traditional estimator.
    let pg = TraditionalEstimator::analyze(&db);
    let pg_errors: Vec<f64> = suite
        .test
        .iter()
        .map(|s| {
            let mut plan = s.plan.clone();
            let (card, _) = pg.estimate_plan(&mut plan);
            q_error(card, s.true_cardinality().max(1.0))
        })
        .collect();
    table.add_errors("PGCard", &pg_errors);

    // MSCN baseline.
    let mscn_fx = MscnFeaturizer::new(db.clone(), EncodingConfig::from_database(&db, 16, 128));
    let train_sets: Vec<_> = suite.train.iter().map(|s| mscn_fx.featurize(&s.plan)).collect();
    let test_sets: Vec<_> = suite.test.iter().map(|s| mscn_fx.featurize(&s.plan)).collect();
    let mscn_model = MscnModel::new(
        mscn_fx.table_dim(),
        mscn_fx.join_dim(),
        mscn_fx.predicate_dim(),
        MscnConfig { epochs: 5, ..Default::default() },
    );
    let mut mscn = MscnTrainer::new(mscn_model, &train_sets);
    mscn.train(&train_sets);
    let mscn_errors: Vec<f64> = test_sets.iter().map(|s| q_error(mscn.estimate(s), s.true_cardinality)).collect();
    table.add_errors("MSCNCard", &mscn_errors);

    // Tree models (NN and LSTM representation cells).
    for (label, cell) in [("TNNCard", RepresentationCellKind::Nn), ("TLSTMCard", RepresentationCellKind::Lstm)] {
        let enc = EncodingConfig::from_database(&db, 16, 128);
        let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(16)));
        let mut estimator = CostEstimator::new(
            extractor,
            ModelConfig { cell, task: TaskMode::CardinalityOnly, ..Default::default() },
            TrainConfig { epochs: 5, ..Default::default() },
        );
        let plans: Vec<PlanNode> = suite.train.iter().map(|s| s.plan.clone()).collect();
        estimator.fit(&plans);
        let errors: Vec<f64> =
            suite.test.iter().map(|s| q_error(estimator.estimate(&s.plan).1, s.true_cardinality().max(1.0))).collect();
        table.add_errors(label, &errors);
    }

    table.print();
}
