//! String-predicate workload (the setting of Tables 10 and 11): build the
//! rule-based string embedding of Section 5, train the tree model with
//! min/max predicate pooling and compare against the hash-bitmap encoding.
//!
//! Run with: `cargo run --release --example job_string_workload`

use e2e_cost_estimator::prelude::*;
use std::sync::Arc;

fn main() {
    let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: 2_000, sample_size: 128, seed: 42 }));
    let suite = WorkloadSuite::build(
        &db,
        WorkloadKind::JobStrings,
        SuiteConfig { train_queries: 120, test_queries: 30, seed: 1000 },
    );
    let strings = workload_strings(&suite.train);
    println!("workload uses {} distinct string operands, e.g. {:?}", strings.len(), &strings[..strings.len().min(5)]);

    let mut table = ReportTable::new("JOB-shaped string workload — cardinality q-errors");

    let pg = TraditionalEstimator::analyze(&db);
    let pg_errors: Vec<f64> = suite
        .test
        .iter()
        .map(|s| {
            let mut plan = s.plan.clone();
            let (card, _) = pg.estimate_plan(&mut plan);
            q_error(card, s.true_cardinality().max(1.0))
        })
        .collect();
    table.add_errors("PGCard", &pg_errors);

    let variants: [(&str, StringEncoding, PredicateModelKind); 3] = [
        ("TLSTMHashCard", StringEncoding::Hash, PredicateModelKind::TreeLstm),
        ("TLSTMEmbRCard", StringEncoding::EmbedRule, PredicateModelKind::TreeLstm),
        ("TPoolEmbRCard", StringEncoding::EmbedRule, PredicateModelKind::MinMaxPool),
    ];
    for (label, encoding, predicate) in variants {
        let encoder = build_string_encoder(
            &db,
            &strings,
            encoding,
            EmbedderConfig { dim: 16, max_rows_per_table: 300, epochs: 2, ..Default::default() },
        );
        let enc = EncodingConfig::from_database(&db, 16, 128);
        let extractor = FeatureExtractor::new(db.clone(), enc, encoder);
        let mut estimator = CostEstimator::new(
            extractor,
            ModelConfig { predicate, task: TaskMode::Multitask, ..Default::default() },
            TrainConfig { epochs: 5, ..Default::default() },
        );
        let plans: Vec<PlanNode> = suite.train.iter().map(|s| s.plan.clone()).collect();
        estimator.fit(&plans);
        let errors: Vec<f64> =
            suite.test.iter().map(|s| q_error(estimator.estimate(&s.plan).1, s.true_cardinality().max(1.0))).collect();
        table.add_errors(label, &errors);
    }
    table.print();
}
