//! Warm-start demo: train the estimator once, checkpoint it, reload it into
//! a fresh estimator (as a new serving process would) and verify the reload
//! serves **bit-identical** estimates with zero retraining.
//!
//! Run with: `cargo run --release --example save_load`
//! CI runs this next to the E2E_CHECK bench jobs; the final assertion is the
//! save/load equality guarantee.

use e2e_cost_estimator::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. Database + workload (deterministic; a restarted process rebuilds
    //    the identical database, which is what makes checkpoints portable
    //    across runs).
    let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: 1_000, sample_size: 64, seed: 42 }));
    let train =
        generate_workload(&db, WorkloadConfig { num_queries: 80, max_joins: 2, seed: 11, ..Default::default() });
    let test =
        generate_workload(&db, WorkloadConfig { num_queries: 12, max_joins: 2, seed: 999, ..Default::default() });
    let plans: Vec<PlanNode> = train.iter().map(|s| s.plan.clone()).collect();

    let make_estimator = || {
        let enc = EncodingConfig::from_database(&db, 16, 64);
        let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(16)));
        CostEstimator::new(
            extractor,
            ModelConfig { feature_embed_dim: 16, hidden_dim: 32, estimation_hidden_dim: 16, ..Default::default() },
            TrainConfig { epochs: 3, batch_size: 16, ..Default::default() },
        )
    };

    // 2. Cold start: fit from scratch.
    let mut cold = make_estimator();
    let started = Instant::now();
    let stats = cold.fit(&plans);
    let cold_secs = started.elapsed().as_secs_f64();
    println!("cold start: trained {} epochs in {cold_secs:.2} s", stats.len());

    let test_encoded: Vec<_> = test.iter().map(|s| cold.encode(&s.plan)).collect();
    let cold_estimates = cold.estimate_encoded_batch_memo(&test_encoded);

    // 3. Checkpoint: model config, normalization, extractor vocab, params.
    let path = std::env::temp_dir().join("e2e_save_load_demo.ckpt");
    cold.save_checkpoint(&path).expect("save checkpoint");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("checkpoint: {} ({bytes} bytes)", path.display());

    // 4. Warm start: a fresh estimator loads the checkpoint instead of
    //    fitting — the startup path of a serving process.
    let mut warm = make_estimator();
    let started = Instant::now();
    warm.load_checkpoint(&path).expect("load checkpoint");
    let first = warm.estimate_encoded_batch_memo(&test_encoded[..1]);
    let warm_secs = started.elapsed().as_secs_f64();
    println!(
        "warm start: load + first estimate in {:.1} ms ({:.0}x faster than the cold fit)",
        warm_secs * 1e3,
        cold_secs / warm_secs
    );
    let _ = first;

    // 5. The guarantee: bit-identical estimates, no retraining.
    let warm_estimates = warm.estimate_encoded_batch_memo(&test_encoded);
    assert_eq!(
        warm_estimates.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>(),
        cold_estimates.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>(),
        "reloaded checkpoint must serve bit-identical estimates"
    );
    println!("verified: {} test estimates identical to the fitted model — warm start OK", warm_estimates.len());
    let _ = std::fs::remove_file(&path);
}
