//! Online learning loop demo: serve, drift, detect, fine-tune, republish.
//!
//! A model trained on phase 0 of a drifting-zipf workload serves traffic
//! through the multi-tenant catalog with feedback capture enabled.  When
//! the workload's hot tables and hot years migrate, the refresh controller
//! samples the feedback log, executes the sampled plans for ground truth,
//! watches its q-error window blow past the frozen baseline, fine-tunes a
//! training replica off the serving path and republishes — all while the
//! tenant keeps serving.
//!
//! Run with: `cargo run --release --example online_learning`
//! CI runs this next to the E2E_CHECK bench jobs; the assertions are the
//! closed-loop guarantees.

use e2e_cost_estimator::prelude::*;
use std::sync::Arc;

fn make_estimator(db: &Arc<Database>) -> CostEstimator {
    let enc = EncodingConfig::from_database(db, 8, 32);
    let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(8)));
    CostEstimator::new(
        extractor,
        ModelConfig { feature_embed_dim: 8, hidden_dim: 16, estimation_hidden_dim: 8, seed: 7, ..Default::default() },
        TrainConfig { epochs: 20, batch_size: 8, learning_rate: 0.005, seed: 7, ..Default::default() },
    )
}

/// Serve one phase the way a client would — encode (which registers the
/// plan for ground-truth execution) and batch-estimate — and report the
/// mean cardinality q-error against the phase's known truth.
fn serve_phase(session: &Session, samples: &[QuerySample]) -> f64 {
    let encoded: Vec<EncodedPlan> = samples.iter().map(|s| session.encode(&s.plan).expect("tree backend")).collect();
    let estimates = session.estimate_encoded(&encoded).expect("published model");
    let total: f64 = estimates.iter().zip(samples).map(|((_, card), s)| q_error(*card, s.true_cardinality())).sum();
    total / samples.len() as f64
}

fn main() {
    // 1. A drifting workload: each phase draws from a small zipf-hot window
    //    of fact tables and production years, and the window migrates.
    let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: 800, sample_size: 64, seed: 7 }));
    let generator =
        DriftGenerator::new(&db, DriftConfig { phases: 3, queries_per_phase: 80, skew: 1.5, ..Default::default() });
    println!("generating drift phases (hot window migrates each phase)...");
    let phase0 = generator.phase(0);
    let drifted = generator.phase(2);

    // 2. Train on phase 0, publish through the catalog, enable capture.
    println!("training phase-0 model...");
    let train_plans: Vec<PlanNode> = phase0.samples.iter().map(|s| s.plan.clone()).collect();
    let mut trained = make_estimator(&db);
    trained.fit(&train_plans);
    let ckpt = std::env::temp_dir().join("e2e_online_learning_demo.ckpt");
    trained.save_checkpoint(&ckpt).expect("save phase-0 checkpoint");

    let catalog = Arc::new(ModelCatalog::new());
    let factory_db = db.clone();
    catalog.register_factory("tenant", Box::new(move || TenantBackend::tree(make_estimator(&factory_db))));
    catalog.install_checkpoint("tenant", &ckpt).expect("install phase-0 model");
    let feedback = catalog.enable_feedback("tenant", FeedbackConfig::default());

    // 3. The controller: a training replica resumed from the same
    //    checkpoint, a q-error window against a frozen healthy baseline.
    let mut replica = make_estimator(&db);
    replica.resume_from_checkpoint(&ckpt).expect("resume replica");
    let refreshed_ckpt = std::env::temp_dir().join("e2e_online_learning_refreshed.ckpt");
    let mut controller = RefreshController::new(
        Arc::clone(&catalog),
        "tenant",
        feedback,
        db.clone(),
        replica,
        RefreshConfig {
            sample_budget: 128,
            window: 12,
            drift_factor: 1.3,
            min_pairs: 12,
            fine_tune_epochs: 5,
            checkpoint_path: Some(refreshed_ckpt.clone()),
            ..Default::default()
        },
    );

    // 4. Healthy traffic: the first full window freezes the baseline.
    let session = catalog.session("tenant").expect("tenant");
    let healthy = serve_phase(&session, &phase0.samples);
    match controller.tick().expect("baseline tick") {
        RefreshOutcome::Observed { drifted, baseline, .. } => {
            assert!(!drifted, "healthy traffic must not register as drift");
            println!("healthy: mean q-error {healthy:.2}, baseline frozen at {:.2}", baseline.expect("baseline"));
        }
        other => panic!("expected Observed on healthy traffic, got {other:?}"),
    }

    // 5. The hot window migrates; the served model is now out of
    //    distribution and the controller notices via executed ground truth.
    let degraded = serve_phase(&session, &drifted.samples);
    println!("drift: hot tables/years migrated, mean q-error {healthy:.2} -> {degraded:.2}");
    assert!(degraded > healthy, "drifted traffic must degrade the frozen model");

    let mut republished = None;
    for round in 0..3 {
        match controller.tick().expect("drift tick") {
            RefreshOutcome::Refreshed { generation, sampled, pairs, window_mean, baseline, .. } => {
                println!(
                    "refresh: window mean {window_mean:.2} > baseline {baseline:.2} x factor — \
                     fine-tuned on {pairs} accumulated ground-truth pairs ({sampled} sampled this \
                     tick), republished generation {generation}"
                );
                republished = Some(generation);
                break;
            }
            outcome => {
                println!("observing: {outcome:?}");
                let _ = serve_phase(&session, &drifted.samples);
                assert!(round < 2, "controller never refreshed");
            }
        }
    }
    let generation = republished.expect("refresh must have happened");
    assert_eq!(generation, 2, "republish is the tenant's second generation");
    assert_eq!(session.generation(), Some(2), "the session sees the new generation at its next call");

    // 6. The republished model recovers on the drifted traffic and serves
    //    the full production surface (quantized tier included).
    let recovered = serve_phase(&session, &drifted.samples);
    println!("recovered: mean q-error {degraded:.2} -> {recovered:.2} on the drifted traffic");
    assert!(recovered < degraded, "the fine-tuned model must improve on drifted traffic");
    let published = catalog.current("tenant").expect("published");
    assert!(published.tree().expect("tree").has_quantized_weights(), "republish re-quantizes");
    assert!(published.tiered_aggregator().is_some(), "republished model offers the tiered path");

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&refreshed_ckpt);
    println!("demo OK");
}
