//! Estimation efficiency (the setting of Table 12): compare one-by-one
//! estimation against level-wise batched inference and the representation
//! memory pool.
//!
//! Run with: `cargo run --release --example efficiency_batching`

use e2e_cost_estimator::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // Full-size database: ground truth goes through the counting executor,
    // which propagates per-key match counts instead of materializing join
    // tuples, so the Scale workload's 4-way star joins are cheap to label
    // even on the hottest movies.
    let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: 2_000, sample_size: 128, seed: 42 }));
    let suite = WorkloadSuite::build(
        &db,
        WorkloadKind::Scale,
        SuiteConfig { train_queries: 100, test_queries: 60, seed: 2000 },
    );

    let enc = EncodingConfig::from_database(&db, 16, 128);
    let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(16)));
    let mut estimator =
        CostEstimator::new(extractor, ModelConfig::default(), TrainConfig { epochs: 3, ..Default::default() });
    let plans: Vec<PlanNode> = suite.train.iter().map(|s| s.plan.clone()).collect();
    estimator.fit(&plans);

    let test_plans: Vec<PlanNode> = suite.test.iter().map(|s| s.plan.clone()).collect();
    let encoded: Vec<_> = test_plans.iter().map(|p| estimator.encode(p)).collect();
    let n = encoded.len();

    let start = Instant::now();
    for p in &encoded {
        estimator.estimate_encoded(p);
    }
    let one_by_one = start.elapsed();

    let start = Instant::now();
    let batched = estimator.estimate_encoded_batch(&encoded);
    let batch_time = start.elapsed();

    // Memory pool: repeated estimation of the same plans is served from cache.
    let start = Instant::now();
    for p in &test_plans {
        estimator.estimate(p);
    }
    let first_pass = start.elapsed();
    let start = Instant::now();
    for p in &test_plans {
        estimator.estimate(p);
    }
    let cached_pass = start.elapsed();
    let (hits, misses) = estimator.cache_stats();

    println!("queries: {n}");
    println!("one-by-one inference : {:>9.3} ms/query", one_by_one.as_secs_f64() * 1e3 / n as f64);
    println!("level-batched        : {:>9.3} ms/query", batch_time.as_secs_f64() * 1e3 / n as f64);
    println!("memory-pool 1st pass : {:>9.3} ms/query", first_pass.as_secs_f64() * 1e3 / n as f64);
    println!(
        "memory-pool repeat   : {:>9.3} ms/query (hits {hits}, misses {misses})",
        cached_pass.as_secs_f64() * 1e3 / n as f64
    );
    println!("batched results for first 3 plans: {:?}", &batched[..n.min(3)]);
}
