//! Multi-tenant serving demo: train two models, publish both in one
//! process's `ModelCatalog`, serve them concurrently, then roll out a
//! retrained checkpoint under one name as a **live hot-swap** — while a
//! session on the other tenant keeps serving, undisturbed and
//! bit-identical, the whole time.
//!
//! Run with: `cargo run --release --example multi_tenant`
//! CI runs this next to the E2E_CHECK bench jobs; the assertions are the
//! multi-tenant serving guarantees.

use e2e_cost_estimator::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn make_estimator(db: &Arc<Database>, seed: u64) -> CostEstimator {
    let enc = EncodingConfig::from_database(db, 16, 64);
    let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(16)));
    CostEstimator::new(
        extractor,
        ModelConfig { feature_embed_dim: 16, hidden_dim: 32, estimation_hidden_dim: 16, seed, ..Default::default() },
        TrainConfig { epochs: 2, batch_size: 16, seed, ..Default::default() },
    )
}

fn card_bits(estimates: &[PlanEstimate]) -> Vec<u64> {
    estimates.iter().map(|e| e.cardinality.expect("card").to_bits()).collect()
}

fn main() {
    // 1. One deterministic database, one workload, two tenants' models —
    //    say, one per customer-facing region — trained on different slices.
    let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: 1_000, sample_size: 64, seed: 42 }));
    let samples =
        generate_workload(&db, WorkloadConfig { num_queries: 80, max_joins: 2, seed: 11, ..Default::default() });
    let plans: Vec<PlanNode> = samples.iter().map(|s| s.plan.clone()).collect();

    println!("training tenant models...");
    let mut region_east = make_estimator(&db, 1);
    region_east.fit(&plans[..40]);
    let mut region_west_v1 = make_estimator(&db, 2);
    region_west_v1.fit(&plans[40..]);
    // The retrained v2 of region_west arrives as a checkpoint on disk —
    // exactly how a training job hands a model to the serving process.
    let mut region_west_v2 = make_estimator(&db, 4242);
    region_west_v2.fit(&plans);
    let ckpt = std::env::temp_dir().join("e2e_multi_tenant_demo.ckpt");
    region_west_v2.save_checkpoint(&ckpt).expect("save retrained checkpoint");

    let east_reference = card_bits(&region_east.estimate_many(&plans[..10]));
    let west_v1_reference = card_bits(&region_west_v1.estimate_many(&plans[..10]));
    let west_v2_reference = card_bits(&region_west_v2.estimate_many(&plans[..10]));
    assert_ne!(west_v1_reference, west_v2_reference, "the rollout must be observable");

    // 2. One process, one catalog, both models served by name.
    let catalog = Arc::new(ModelCatalog::new());
    catalog.publish("region_east", TenantBackend::tree(region_east));
    catalog.publish("region_west", TenantBackend::tree(region_west_v1));
    let factory_db = db.clone();
    catalog.register_factory("region_west", Box::new(move || TenantBackend::tree(make_estimator(&factory_db, 4242))));
    println!("catalog serves {:?}", catalog.names());

    // 3. A session per tenant, concurrently; hot-swap region_west mid-flight.
    let east_batches = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        {
            let (catalog, plans) = (Arc::clone(&catalog), &plans);
            let (east_batches, stop) = (Arc::clone(&east_batches), Arc::clone(&stop));
            let east_reference = &east_reference;
            scope.spawn(move || {
                let session = catalog.session("region_east").expect("region_east");
                while !stop.load(Ordering::Relaxed) {
                    let got = card_bits(&session.estimate_plans(&plans[..10]).expect("east serves"));
                    assert_eq!(&got, east_reference, "east was disturbed by west's rollout");
                    east_batches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        let west = catalog.session("region_west").expect("region_west");
        assert_eq!(card_bits(&west.estimate_plans(&plans[..10]).expect("west serves")), west_v1_reference);
        println!("region_west serving v1 (generation {:?})", west.generation());

        // Wait until the east session is demonstrably in flight...
        while east_batches.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
        // ...then roll out v2 live.
        let started = Instant::now();
        let generation = catalog.install_checkpoint("region_west", &ckpt).expect("hot-swap region_west");
        println!(
            "hot-swapped region_west to v2 (generation {generation}) in {:.1} ms, east still serving",
            started.elapsed().as_secs_f64() * 1e3
        );
        assert_eq!(card_bits(&west.estimate_plans(&plans[..10]).expect("west serves")), west_v2_reference);

        let after = east_batches.load(Ordering::Relaxed);
        while east_batches.load(Ordering::Relaxed) < after + 2 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });
    println!(
        "east served {} bit-identical batches across the swap; west now serves v2",
        east_batches.load(Ordering::Relaxed)
    );

    // 4. The same-tenant admission layer: concurrent sessions of region_west
    //    coalesce into shared batched inference calls.
    let encoded: Vec<_> = {
        let session = catalog.session("region_west").expect("region_west");
        plans[..10].iter().map(|p| session.encode(p).expect("tree tenant encodes")).collect()
    };
    let session = catalog.session("region_west").expect("region_west");
    let direct = session.estimate_encoded(&encoded).expect("west serves encoded");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let session = catalog.session("region_west").expect("region_west");
            let (encoded, direct) = (&encoded, &direct);
            scope.spawn(move || {
                for _ in 0..10 {
                    let got = session.estimate_encoded(encoded).expect("west serves encoded");
                    assert_eq!(&got, direct, "aggregated estimates must be bit-identical");
                }
            });
        }
    });
    println!("4 concurrent west sessions served coalesced batches, all bit-identical");
    let _ = std::fs::remove_file(&ckpt);
    println!("demo OK");
}
